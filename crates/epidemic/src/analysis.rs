//! Closed-form epidemic dissemination model.
//!
//! §III-A of the paper: *"nodes need to relay messages to ln(N) + c
//! neighbors, where N is the system size and c a parameter related to the
//! probability of atomic infection, given by `p_atomic = e^{-e^{-c}}`. Thus
//! supposing a system with 50 000 nodes, in order to achieve atomic
//! infection with high probability (p_atomic = 0.999 → c = 7) each node
//! will have to relay around 18 copies of each single message
//! (ln(50 000) + 7 ≈ 18)."*
//!
//! This is the Erdős–Rényi sharp threshold for connectivity of the random
//! relay graph. Experiment E1 validates the formula against simulation.

/// Probability that an epidemic with per-node fanout `ln N + c` infects the
/// entire population (`p_atomic = e^{-e^{-c}}`).
///
/// ```
/// let p = dd_epidemic::atomic_infection_probability(7.0);
/// assert!(p > 0.999);
/// ```
#[must_use]
pub fn atomic_infection_probability(c: f64) -> f64 {
    (-(-c).exp()).exp()
}

/// Inverse of [`atomic_infection_probability`]: the `c` needed for a target
/// probability of atomic infection.
///
/// # Panics
/// Panics unless `0 < p < 1`.
///
/// ```
/// let c = dd_epidemic::c_for_probability(0.999);
/// assert!((c - 6.9).abs() < 0.1);
/// ```
#[must_use]
pub fn c_for_probability(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probability must be strictly inside (0,1)");
    -(-p.ln()).ln()
}

/// Per-node fanout `⌈ln N + c⌉` required to reach all `n` nodes with
/// probability `p` — the paper's headline formula.
///
/// # Panics
/// Panics when `n == 0` or `p` is not in `(0,1)`.
///
/// ```
/// // The paper's own example: N = 50 000, p = 0.999 ⇒ ≈ 18 copies.
/// assert_eq!(dd_epidemic::required_fanout(50_000, 0.999), 18);
/// ```
#[must_use]
pub fn required_fanout(n: u64, p: f64) -> u32 {
    assert!(n > 0, "population must be non-empty");
    let c = c_for_probability(p);
    let f = (n as f64).ln() + c;
    // ceil with a small epsilon so 17.999999 rounds to 18, not 19.
    let f = (f - 1e-9).ceil().max(1.0);
    f as u32
}

/// Expected fraction of the population reached by a *sub-critical* epidemic
/// with mean fanout `f` (mean-field approximation): the unique fixed point
/// `π` of `π = 1 − e^{−f·π}`.
///
/// Used by E2 to position the measured coverage/fanout curve against
/// theory. Returns 0 for `f ≤ 1` (below the epidemic threshold).
#[must_use]
pub fn expected_coverage(fanout: f64) -> f64 {
    if fanout <= 1.0 {
        return 0.0;
    }
    // Fixed-point iteration; converges quickly for f > 1.
    let mut pi = 1.0 - (-fanout).exp();
    for _ in 0..200 {
        let next = 1.0 - (-fanout * pi).exp();
        if (next - pi).abs() < 1e-12 {
            return next;
        }
        pi = next;
    }
    pi
}

/// Total relayed copies per disseminated item for population `n` and target
/// probability `p` — i.e. `n × required_fanout`. E2 uses this to show the
/// paper's "substantial increase" from partial to atomic guarantees.
#[must_use]
pub fn dissemination_cost(n: u64, p: f64) -> u64 {
    n * u64::from(required_fanout(n, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_holds() {
        // p = 0.999 → c ≈ 6.9 (the paper rounds to 7); ln(50 000) ≈ 10.8;
        // fanout ≈ 18.
        let c = c_for_probability(0.999);
        assert!((c - 6.907).abs() < 0.01, "c = {c}");
        assert_eq!(required_fanout(50_000, 0.999), 18);
    }

    #[test]
    fn probability_is_monotone_in_c() {
        let mut last = 0.0;
        for c10 in -30..60 {
            let p = atomic_infection_probability(f64::from(c10) / 10.0);
            assert!(p >= last);
            last = p;
        }
        assert!(last > 0.99);
    }

    #[test]
    fn inverse_round_trips() {
        for &p in &[0.5, 0.9, 0.99, 0.999, 0.37] {
            let c = c_for_probability(p);
            let back = atomic_infection_probability(c);
            assert!((back - p).abs() < 1e-9, "p {p} → c {c} → {back}");
        }
    }

    #[test]
    fn fanout_grows_logarithmically() {
        let f1k = required_fanout(1_000, 0.999);
        let f1m = required_fanout(1_000_000, 0.999);
        // ln(10^6)/ln(10^3) = 2, so fanout should grow by ~ln(1000) ≈ 6.9.
        assert!(f1m > f1k);
        assert!(f1m - f1k <= 8, "f1k={f1k}, f1m={f1m}");
    }

    #[test]
    fn fanout_is_at_least_one() {
        assert_eq!(required_fanout(1, 0.01), 1);
    }

    #[test]
    fn expected_coverage_matches_known_points() {
        // Classic epidemic results: f = 2 → π ≈ 0.797; f = 3 → π ≈ 0.941.
        assert!((expected_coverage(2.0) - 0.7968).abs() < 1e-3);
        assert!((expected_coverage(3.0) - 0.9405).abs() < 1e-3);
        assert_eq!(expected_coverage(0.5), 0.0);
        assert_eq!(expected_coverage(1.0), 0.0);
        assert!(expected_coverage(12.0) > 0.9999);
    }

    #[test]
    fn coverage_is_monotone_in_fanout() {
        let mut last = 0.0;
        for f10 in 11..100 {
            let cov = expected_coverage(f64::from(f10) / 10.0);
            assert!(cov >= last - 1e-12, "fanout {}: {cov} < {last}", f64::from(f10) / 10.0);
            last = cov;
        }
    }

    #[test]
    fn dissemination_cost_scales_with_n_and_p() {
        assert!(dissemination_cost(10_000, 0.999) > dissemination_cost(10_000, 0.9));
        assert!(dissemination_cost(20_000, 0.99) > 2 * dissemination_cost(10_000, 0.99) - 20_000);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn p_of_one_is_rejected() {
        let _ = c_for_probability(1.0);
    }

    #[test]
    #[should_panic(expected = "population")]
    fn empty_population_is_rejected() {
        let _ = required_fanout(0, 0.9);
    }
}
