//! Composed epidemic broadcast node for `dd-sim`.
//!
//! Binds [`PushState`] (eager push) and
//! [`AntiEntropyStore`] (periodic
//! digest pull) to a peer set. This is the process the dissemination
//! experiments (E1, E2) run unmodified at 1 000–50 000 nodes.

use crate::antientropy::{AntiEntropyStore, Digest};
use crate::push::{PushConfig, PushState, Rumor, RumorId};
use dd_membership::PeerSampler;
use dd_sim::{Ctx, Duration, NodeId, Process, TimerTag};
use rand::Rng;
use std::fmt;

/// Timer tag for anti-entropy exchanges.
pub const ANTI_ENTROPY_TIMER: TimerTag = TimerTag(0xAE0);

/// Broadcast node configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct BroadcastConfig {
    /// Eager-push parameters.
    pub push: PushConfig,
    /// Ticks between anti-entropy exchanges; `None` disables pull repair.
    pub anti_entropy_period: Option<Duration>,
}

/// Messages of the composed broadcast protocol.
#[derive(Debug, Clone)]
pub enum BroadcastMsg<T> {
    /// Eagerly pushed rumor.
    Rumor(Rumor<T>),
    /// Anti-entropy: "here is what I have".
    DigestReq(Digest),
    /// Anti-entropy: "here is what you were missing".
    Pull(Vec<(RumorId, T)>),
}

/// An epidemic broadcast participant.
///
/// `S` supplies gossip partners (full membership oracle in closed-world
/// experiments, a Cyclon view in open-world ones); `T` is the payload.
pub struct BroadcastNode<S, T> {
    /// Peer source (public: composite processes refresh it from e.g. a
    /// Cyclon view they also maintain).
    pub peers: S,
    push: PushState,
    store: AntiEntropyStore<T>,
    config: BroadcastConfig,
}

impl<S: fmt::Debug, T: fmt::Debug> fmt::Debug for BroadcastNode<S, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BroadcastNode")
            .field("peers", &self.peers)
            .field("seen", &self.push.seen_count())
            .field("stored", &self.store.len())
            .finish()
    }
}

impl<S: PeerSampler, T: Clone + fmt::Debug> BroadcastNode<S, T> {
    /// Creates a node.
    #[must_use]
    pub fn new(peers: S, config: BroadcastConfig) -> Self {
        BroadcastNode {
            peers,
            push: PushState::new(config.push),
            store: AntiEntropyStore::new(),
            config,
        }
    }

    /// Whether this node has received rumor `id`.
    #[must_use]
    pub fn has(&self, id: RumorId) -> bool {
        self.store.get(id).is_some()
    }

    /// Payload of rumor `id`, if held.
    #[must_use]
    pub fn payload(&self, id: RumorId) -> Option<&T> {
        self.store.get(id)
    }

    /// Number of distinct rumors delivered to this node.
    #[must_use]
    pub fn delivered(&self) -> usize {
        self.store.len()
    }

    /// A candidate pool a bit wider than the fanout: sampling instead of
    /// materialising the full peer list keeps memory O(fanout) per event,
    /// which is what lets dissemination run at the paper's 50 000-node
    /// scale.
    fn pool(&self, ctx: &mut Ctx<'_, BroadcastMsg<T>>) -> Vec<NodeId> {
        let want = self.config.push.fanout as usize * 2 + 4;
        self.peers.sample_peers(ctx.rng(), want)
    }

    /// Starts disseminating `payload` from this node (the write path of the
    /// persistent layer calls this on the entry node).
    pub fn originate(&mut self, ctx: &mut Ctx<'_, BroadcastMsg<T>>, id: RumorId, payload: T) {
        self.store.insert(id, payload.clone());
        let peer_list = self.pool(ctx);
        let self_id = ctx.id();
        let targets = self.push.originate(ctx.rng(), self_id, &peer_list, id);
        ctx.metrics().incr("bcast.originated");
        for t in targets {
            ctx.metrics().incr("bcast.relays");
            ctx.send(t, BroadcastMsg::Rumor(Rumor { id, hops: 1, payload: payload.clone() }));
        }
    }
}

impl<S: PeerSampler, T: Clone + fmt::Debug> Process for BroadcastNode<S, T> {
    type Msg = BroadcastMsg<T>;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if let Some(period) = self.config.anti_entropy_period {
            let jitter = ctx.rng().gen_range(0..period.0.max(1));
            ctx.set_timer(Duration(jitter), ANTI_ENTROPY_TIMER);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
        match msg {
            BroadcastMsg::Rumor(rumor) => {
                let peer_list = self.pool(ctx);
                let self_id = ctx.id();
                let (first, targets) =
                    self.push.on_rumor(ctx.rng(), self_id, &peer_list, rumor.id, rumor.hops);
                if first {
                    ctx.metrics().incr("bcast.delivered_first");
                    self.store.insert(rumor.id, rumor.payload.clone());
                } else {
                    ctx.metrics().incr("bcast.duplicates");
                }
                for t in targets {
                    ctx.metrics().incr("bcast.relays");
                    ctx.send(
                        t,
                        BroadcastMsg::Rumor(Rumor {
                            id: rumor.id,
                            hops: rumor.hops + 1,
                            payload: rumor.payload.clone(),
                        }),
                    );
                }
            }
            BroadcastMsg::DigestReq(their_digest) => {
                let missing = self.store.items_missing_from(&their_digest);
                if !missing.is_empty() {
                    ctx.metrics().add("ae.pushed", missing.len() as u64);
                    ctx.send(from, BroadcastMsg::Pull(missing));
                }
            }
            BroadcastMsg::Pull(batch) => {
                let new = self.store.apply(batch);
                ctx.metrics().add("ae.recovered", new as u64);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, tag: TimerTag) {
        if tag != ANTI_ENTROPY_TIMER {
            return;
        }
        if let Some(peer) = self.peers.sample_one(ctx.rng()) {
            ctx.metrics().incr("ae.exchanges");
            ctx.send(peer, BroadcastMsg::DigestReq(self.store.digest()));
        }
        if let Some(period) = self.config.anti_entropy_period {
            ctx.set_timer(period, ANTI_ENTROPY_TIMER);
        }
    }

    fn on_up(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        if let Some(period) = self.config.anti_entropy_period {
            ctx.set_timer(period, ANTI_ENTROPY_TIMER);
        }
    }
}

/// Convenience harness: runs one dissemination over `n` nodes with full
/// membership and returns `(reached, messages_sent)`.
///
/// This is the inner loop of experiments E1 and E2.
#[must_use]
pub fn run_dissemination(
    n: u64,
    config: BroadcastConfig,
    seed: u64,
    settle: Duration,
) -> (usize, u64) {
    use dd_membership::DensePopulation;
    use dd_sim::{Sim, SimConfig};

    let mut sim: Sim<BroadcastNode<DensePopulation, u64>> =
        Sim::new(SimConfig::default().seed(seed));
    for i in 0..n {
        sim.add_node(NodeId(i), BroadcastNode::new(DensePopulation::new(NodeId(i), n), config));
    }
    // Kick off one rumor at node 0 by injecting it as if pushed from outside.
    sim.inject(
        NodeId(0),
        NodeId(0),
        BroadcastMsg::Rumor(Rumor { id: RumorId(1), hops: 0, payload: 42 }),
    );
    sim.run_until(dd_sim::Time::ZERO + settle);
    let reached = sim.ids().filter(|&i| sim.node(i).unwrap().has(RumorId(1))).count();
    (reached, sim.metrics().counter("net.sent"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::required_fanout;
    use crate::push::GossipMode;
    use dd_sim::Duration;

    fn cfg(fanout: u32) -> BroadcastConfig {
        BroadcastConfig {
            push: PushConfig { fanout, mode: GossipMode::InfectAndDie, max_hops: 0 },
            anti_entropy_period: None,
        }
    }

    #[test]
    fn critical_fanout_reaches_everyone() {
        let n = 500;
        let fanout = required_fanout(n, 0.999); // ≈ 13
        let (reached, _) = run_dissemination(n, cfg(fanout), 1, Duration(10_000));
        assert_eq!(reached as u64, n, "atomic infection expected at fanout {fanout}");
    }

    #[test]
    fn subcritical_fanout_reaches_a_fraction() {
        let n = 500;
        let (reached, _) = run_dissemination(n, cfg(2), 2, Duration(10_000));
        let frac = reached as f64 / n as f64;
        // Theory: π(2) ≈ 0.797. Allow generous slack for a single run.
        assert!(
            (0.55..1.0).contains(&frac),
            "fanout 2 should reach a large but partial fraction, got {frac}"
        );
        assert!(reached < n as usize, "fanout 2 should miss someone in most runs");
    }

    #[test]
    fn cost_grows_with_fanout() {
        let n = 300;
        let (_, m3) = run_dissemination(n, cfg(3), 3, Duration(10_000));
        let (_, m12) = run_dissemination(n, cfg(12), 3, Duration(10_000));
        assert!(m12 > 2 * m3, "fanout 12 should cost much more than fanout 3: {m12} vs {m3}");
    }

    #[test]
    fn anti_entropy_completes_partial_dissemination() {
        use dd_membership::MembershipOracle;
        use dd_sim::{Sim, SimConfig, Time};
        let n = 200u64;
        let config = BroadcastConfig {
            push: PushConfig { fanout: 2, mode: GossipMode::InfectAndDie, max_hops: 0 },
            anti_entropy_period: Some(Duration(500)),
        };
        let mut sim: Sim<BroadcastNode<MembershipOracle, u64>> =
            Sim::new(SimConfig::default().seed(5));
        for i in 0..n {
            sim.add_node(
                NodeId(i),
                BroadcastNode::new(MembershipOracle::dense(NodeId(i), n), config),
            );
        }
        sim.inject(
            NodeId(0),
            NodeId(0),
            BroadcastMsg::Rumor(Rumor { id: RumorId(9), hops: 0, payload: 7 }),
        );
        sim.run_until(Time(30_000)); // 60 anti-entropy rounds
        let reached = sim.ids().filter(|&i| sim.node(i).unwrap().has(RumorId(9))).count();
        assert_eq!(reached as u64, n, "anti-entropy must deliver to everyone eventually");
        assert!(sim.metrics().counter("ae.recovered") > 0, "pull repair did real work");
    }

    #[test]
    fn payload_is_preserved_end_to_end() {
        use dd_membership::MembershipOracle;
        use dd_sim::{Sim, SimConfig, Time};
        let n = 50u64;
        let mut sim: Sim<BroadcastNode<MembershipOracle, u64>> =
            Sim::new(SimConfig::default().seed(8));
        for i in 0..n {
            sim.add_node(
                NodeId(i),
                BroadcastNode::new(MembershipOracle::dense(NodeId(i), n), cfg(8)),
            );
        }
        sim.inject(
            NodeId(0),
            NodeId(0),
            BroadcastMsg::Rumor(Rumor { id: RumorId(3), hops: 0, payload: 1234 }),
        );
        sim.run_until(Time(5_000));
        for i in 0..n {
            assert_eq!(sim.node(NodeId(i)).unwrap().payload(RumorId(3)), Some(&1234));
        }
    }

    #[test]
    fn originate_via_ctx_spreads_from_any_node() {
        use dd_membership::MembershipOracle;
        use dd_sim::engine::with_adhoc_ctx;
        use dd_sim::Metrics;
        use rand::SeedableRng;

        let mut node: BroadcastNode<MembershipOracle, &str> =
            BroadcastNode::new(MembershipOracle::dense(NodeId(2), 10), cfg(4));
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut metrics = Metrics::new();
        let ((), effects) =
            with_adhoc_ctx(NodeId(2), dd_sim::Time::ZERO, &mut rng, &mut metrics, |ctx| {
                node.originate(ctx, RumorId(77), "hello");
            });
        assert!(node.has(RumorId(77)));
        assert_eq!(effects.len(), 4, "fanout sends");
        assert_eq!(metrics.counter("bcast.originated"), 1);
    }
}
