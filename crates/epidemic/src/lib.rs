//! # dd-epidemic — epidemic dissemination
//!
//! Implements the dissemination machinery of the paper's persistent-state
//! layer (§III-A): "the key idea is to rely on an epidemic dissemination
//! protocol to spread data and operations to relevant nodes, taking
//! advantage of the inherent scalability and ability to mask transient node
//! and link failures."
//!
//! * [`analysis`] — the closed-form model the paper quotes: relaying to
//!   `ln N + c` neighbours infects everyone with probability
//!   `p = e^{-e^{-c}}`; for N = 50 000 and p = 0.999 this gives the paper's
//!   "around 18 copies of each single message".
//! * [`push`] — eager push gossip (infect-and-die / infect-forever), the
//!   workhorse of write dissemination.
//! * [`rumor`] — TTL/feedback-bounded rumor mongering, the *relaxed*
//!   dissemination mode whose coverage/cost trade-off E2 explores.
//! * [`antientropy`] — periodic digest pull, repairing the tail of rumors
//!   that eager push missed.
//! * [`broadcast`] — a composed [`dd_sim::Process`] tying the above to a
//!   peer sampler, used directly by the experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod antientropy;
pub mod broadcast;
pub mod push;
pub mod rumor;

pub use analysis::{atomic_infection_probability, c_for_probability, required_fanout};
pub use antientropy::{AntiEntropyStore, Digest, Summary};
pub use broadcast::{BroadcastConfig, BroadcastMsg, BroadcastNode};
pub use push::{GossipMode, PushConfig, PushState, Rumor, RumorId};
