//! Anti-entropy: periodic digest pull.
//!
//! Eager push leaves a small uninfected tail (1 − p_atomic of runs miss
//! somebody); anti-entropy guarantees eventual delivery by having every
//! node periodically compare rumor digests with a random peer and pull what
//! it misses. §III-A's redundancy-maintenance "check tuple redundancy
//! directly between them and restore redundancy as necessary" is this
//! mechanism applied pairwise; `dd-walks::repair` reuses it.

use crate::push::RumorId;
use std::collections::BTreeMap;

/// A compact description of the rumors a node holds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Digest {
    ids: Vec<RumorId>,
}

impl Digest {
    /// Builds a digest from the ids a node currently stores.
    #[must_use]
    pub fn from_ids(mut ids: Vec<RumorId>) -> Self {
        ids.sort();
        ids.dedup();
        Digest { ids }
    }

    /// Ids in the digest (sorted).
    #[must_use]
    pub fn ids(&self) -> &[RumorId] {
        &self.ids
    }

    /// Number of ids.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the digest holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Ids present in `self` but missing from `other` — what the peer
    /// should pull from us.
    #[must_use]
    pub fn missing_from(&self, other: &Digest) -> Vec<RumorId> {
        let mut out = Vec::new();
        let mut i = 0;
        for &id in &self.ids {
            while i < other.ids.len() && other.ids[i] < id {
                i += 1;
            }
            if i >= other.ids.len() || other.ids[i] != id {
                out.push(id);
            }
        }
        out
    }
}

/// Store of rumor payloads supporting digest exchange.
///
/// This is the generic mechanism; the persistent-state layer instantiates
/// `T` with versioned tuples.
#[derive(Debug, Clone, Default)]
pub struct AntiEntropyStore<T> {
    items: BTreeMap<RumorId, T>,
}

impl<T> AntiEntropyStore<T> {
    /// Empty store.
    #[must_use]
    pub fn new() -> Self {
        AntiEntropyStore { items: BTreeMap::new() }
    }

    /// Inserts an item (idempotent by id; later inserts win).
    pub fn insert(&mut self, id: RumorId, value: T) {
        self.items.insert(id, value);
    }

    /// Fetches an item.
    #[must_use]
    pub fn get(&self, id: RumorId) -> Option<&T> {
        self.items.get(&id)
    }

    /// Number of items held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The store's digest.
    #[must_use]
    pub fn digest(&self) -> Digest {
        Digest::from_ids(self.items.keys().copied().collect())
    }
}

impl<T: Clone> AntiEntropyStore<T> {
    /// Items the peer (described by `their_digest`) is missing.
    #[must_use]
    pub fn items_missing_from(&self, their_digest: &Digest) -> Vec<(RumorId, T)> {
        self.digest()
            .missing_from(their_digest)
            .into_iter()
            .filter_map(|id| self.items.get(&id).map(|v| (id, v.clone())))
            .collect()
    }

    /// Applies a batch pulled from a peer; returns how many were new.
    pub fn apply(&mut self, batch: Vec<(RumorId, T)>) -> usize {
        let mut new = 0;
        for (id, v) in batch {
            if !self.items.contains_key(&id) {
                new += 1;
            }
            self.items.insert(id, v);
        }
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(ids: &[u64]) -> Digest {
        Digest::from_ids(ids.iter().map(|&i| RumorId(i)).collect())
    }

    #[test]
    fn digest_sorts_and_dedups() {
        let d = digest(&[3, 1, 3, 2]);
        assert_eq!(d.ids(), &[RumorId(1), RumorId(2), RumorId(3)]);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn missing_from_computes_set_difference() {
        let a = digest(&[1, 2, 3, 5]);
        let b = digest(&[2, 3, 4]);
        assert_eq!(a.missing_from(&b), vec![RumorId(1), RumorId(5)]);
        assert_eq!(b.missing_from(&a), vec![RumorId(4)]);
        assert!(a.missing_from(&a).is_empty());
    }

    #[test]
    fn missing_from_empty_digest_is_everything() {
        let a = digest(&[7, 9]);
        let empty = Digest::default();
        assert_eq!(a.missing_from(&empty).len(), 2);
        assert!(empty.missing_from(&a).is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn store_round_trip_synchronises_two_peers() {
        let mut a: AntiEntropyStore<&str> = AntiEntropyStore::new();
        let mut b: AntiEntropyStore<&str> = AntiEntropyStore::new();
        a.insert(RumorId(1), "one");
        a.insert(RumorId(2), "two");
        b.insert(RumorId(2), "two");
        b.insert(RumorId(3), "three");

        // a pulls from b and vice versa using exchanged digests.
        let to_b = a.items_missing_from(&b.digest());
        let to_a = b.items_missing_from(&a.digest());
        assert_eq!(b.apply(to_b), 1);
        assert_eq!(a.apply(to_a), 1);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(RumorId(3)), Some(&"three"));
    }

    #[test]
    fn apply_is_idempotent() {
        let mut s: AntiEntropyStore<u32> = AntiEntropyStore::new();
        assert_eq!(s.apply(vec![(RumorId(1), 10)]), 1);
        assert_eq!(s.apply(vec![(RumorId(1), 10)]), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn empty_store_has_empty_digest() {
        let s: AntiEntropyStore<u8> = AntiEntropyStore::new();
        assert!(s.is_empty());
        assert!(s.digest().is_empty());
    }
}
