//! Anti-entropy: periodic digest pull.
//!
//! Eager push leaves a small uninfected tail (1 − p_atomic of runs miss
//! somebody); anti-entropy guarantees eventual delivery by having every
//! node periodically compare rumor digests with a random peer and pull what
//! it misses. §III-A's redundancy-maintenance "check tuple redundancy
//! directly between them and restore redundancy as necessary" is this
//! mechanism applied pairwise; `dd-walks::repair` reuses it.

use crate::push::RumorId;
use dd_sim::rng::mix;
use std::collections::BTreeMap;

/// Salt for the bucket-placement hash of [`Summary`].
const BUCKET_SALT: u64 = 0x5D1E_7CA7_B0C4_E75A;
/// Salt for the per-id fold hash of [`Summary`].
const FOLD_SALT: u64 = 0xA11C_E0FF_EE5E_ED01;

/// A constant-size fingerprint of a rumor-id set for digest-first
/// anti-entropy.
///
/// [`Digest`] grows linearly with the store, so shipping it every repair
/// round costs O(store) on the wire even when both replicas already
/// agree. A `Summary` folds the ids into a fixed number of buckets
/// (placement and fold are salted hashes of the id), so the steady-state
/// exchange is O(buckets) regardless of store size. Two summaries built
/// over the same id set are identical; a differing id perturbs exactly
/// one bucket's `(xor, count)` pair, so [`Summary::diff`] localises the
/// divergence and only those buckets' ids need to cross the wire.
///
/// A bucket collision (two differing id sets folding to the same
/// `(xor, count)`) needs an exact 64-bit XOR match at equal cardinality
/// — ~2⁻⁶⁴ per bucket — and even then the next round re-randomises
/// nothing (the fold is deterministic), so pathological sets could in
/// principle hide; the periodic full [`Digest`] path remains available
/// where absolute certainty is required.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Summary {
    xors: Vec<u64>,
    counts: Vec<u32>,
}

impl Summary {
    /// An empty summary with `buckets` buckets.
    ///
    /// # Panics
    /// Panics if `buckets` is zero.
    #[must_use]
    pub fn new(buckets: usize) -> Self {
        assert!(buckets > 0, "summary needs at least one bucket");
        Summary { xors: vec![0; buckets], counts: vec![0; buckets] }
    }

    /// Builds a summary over an id set.
    #[must_use]
    pub fn from_ids(buckets: usize, ids: impl IntoIterator<Item = RumorId>) -> Self {
        let mut s = Summary::new(buckets);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Clears every bucket in place, keeping the allocations.
    pub fn clear(&mut self) {
        self.xors.fill(0);
        self.counts.fill(0);
    }

    /// Rebuilds the summary over `ids` in place. Equivalent to
    /// [`Summary::from_ids`] but reuses the bucket arrays, so a node
    /// re-summarising its store every repair round allocates once, not
    /// once per exchange. Adapts the geometry when `buckets` differs.
    ///
    /// # Panics
    /// Panics if `buckets` is zero.
    pub fn rebuild(&mut self, buckets: usize, ids: impl IntoIterator<Item = RumorId>) {
        assert!(buckets > 0, "summary needs at least one bucket");
        if self.xors.len() == buckets {
            self.clear();
        } else {
            self.xors.clear();
            self.xors.resize(buckets, 0);
            self.counts.clear();
            self.counts.resize(buckets, 0);
        }
        for id in ids {
            self.insert(id);
        }
    }

    /// The bucket an id folds into, for `buckets` buckets.
    #[must_use]
    pub fn bucket_of(buckets: usize, id: RumorId) -> usize {
        (mix(id.0, BUCKET_SALT) % buckets as u64) as usize
    }

    /// Folds one id in. The fold is XOR-based, hence insertion-order
    /// independent; inserting the same id twice cancels, so callers fold
    /// each held id exactly once.
    pub fn insert(&mut self, id: RumorId) {
        let b = Self::bucket_of(self.xors.len(), id);
        self.xors[b] ^= mix(id.0, FOLD_SALT);
        self.counts[b] = self.counts[b].wrapping_add(1);
    }

    /// Number of buckets (the wire size, independent of the store).
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.xors.len()
    }

    /// Number of buckets at least one id folded into — the occupancy
    /// gauge: near `len()` while ids are sparse, saturating towards
    /// `bucket_count()` as the summarised set grows.
    #[must_use]
    pub fn occupied(&self) -> usize {
        self.counts.iter().filter(|&&c| c != 0).count()
    }

    /// Total ids folded in.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.iter().map(|&c| c as usize).sum()
    }

    /// True when no id has been folded in.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Indices of buckets whose contents differ from `other`, ascending.
    /// Summaries of mismatched geometry are treated as fully divergent.
    #[must_use]
    pub fn diff(&self, other: &Summary) -> Vec<u32> {
        if self.bucket_count() != other.bucket_count() {
            return (0..self.bucket_count() as u32).collect();
        }
        (0..self.xors.len())
            .filter(|&b| self.xors[b] != other.xors[b] || self.counts[b] != other.counts[b])
            .map(|b| b as u32)
            .collect()
    }
}

/// A compact description of the rumors a node holds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Digest {
    ids: Vec<RumorId>,
}

impl Digest {
    /// Builds a digest from the ids a node currently stores.
    #[must_use]
    pub fn from_ids(mut ids: Vec<RumorId>) -> Self {
        ids.sort();
        ids.dedup();
        Digest { ids }
    }

    /// Ids in the digest (sorted).
    #[must_use]
    pub fn ids(&self) -> &[RumorId] {
        &self.ids
    }

    /// Number of ids.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the digest holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Ids present in `self` but missing from `other` — what the peer
    /// should pull from us.
    #[must_use]
    pub fn missing_from(&self, other: &Digest) -> Vec<RumorId> {
        let mut out = Vec::new();
        let mut i = 0;
        for &id in &self.ids {
            while i < other.ids.len() && other.ids[i] < id {
                i += 1;
            }
            if i >= other.ids.len() || other.ids[i] != id {
                out.push(id);
            }
        }
        out
    }
}

/// Store of rumor payloads supporting digest exchange.
///
/// This is the generic mechanism; the persistent-state layer instantiates
/// `T` with versioned tuples.
#[derive(Debug, Clone, Default)]
pub struct AntiEntropyStore<T> {
    items: BTreeMap<RumorId, T>,
}

impl<T> AntiEntropyStore<T> {
    /// Empty store.
    #[must_use]
    pub fn new() -> Self {
        AntiEntropyStore { items: BTreeMap::new() }
    }

    /// Inserts an item (idempotent by id; later inserts win).
    pub fn insert(&mut self, id: RumorId, value: T) {
        self.items.insert(id, value);
    }

    /// Fetches an item.
    #[must_use]
    pub fn get(&self, id: RumorId) -> Option<&T> {
        self.items.get(&id)
    }

    /// Number of items held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The store's digest.
    #[must_use]
    pub fn digest(&self) -> Digest {
        Digest::from_ids(self.items.keys().copied().collect())
    }
}

impl<T: Clone> AntiEntropyStore<T> {
    /// Items the peer (described by `their_digest`) is missing.
    #[must_use]
    pub fn items_missing_from(&self, their_digest: &Digest) -> Vec<(RumorId, T)> {
        self.digest()
            .missing_from(their_digest)
            .into_iter()
            .filter_map(|id| self.items.get(&id).map(|v| (id, v.clone())))
            .collect()
    }

    /// Applies a batch pulled from a peer; returns how many were new.
    pub fn apply(&mut self, batch: Vec<(RumorId, T)>) -> usize {
        let mut new = 0;
        for (id, v) in batch {
            if !self.items.contains_key(&id) {
                new += 1;
            }
            self.items.insert(id, v);
        }
        new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(ids: &[u64]) -> Digest {
        Digest::from_ids(ids.iter().map(|&i| RumorId(i)).collect())
    }

    #[test]
    fn digest_sorts_and_dedups() {
        let d = digest(&[3, 1, 3, 2]);
        assert_eq!(d.ids(), &[RumorId(1), RumorId(2), RumorId(3)]);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn missing_from_computes_set_difference() {
        let a = digest(&[1, 2, 3, 5]);
        let b = digest(&[2, 3, 4]);
        assert_eq!(a.missing_from(&b), vec![RumorId(1), RumorId(5)]);
        assert_eq!(b.missing_from(&a), vec![RumorId(4)]);
        assert!(a.missing_from(&a).is_empty());
    }

    #[test]
    fn missing_from_empty_digest_is_everything() {
        let a = digest(&[7, 9]);
        let empty = Digest::default();
        assert_eq!(a.missing_from(&empty).len(), 2);
        assert!(empty.missing_from(&a).is_empty());
        assert!(empty.is_empty());
    }

    #[test]
    fn store_round_trip_synchronises_two_peers() {
        let mut a: AntiEntropyStore<&str> = AntiEntropyStore::new();
        let mut b: AntiEntropyStore<&str> = AntiEntropyStore::new();
        a.insert(RumorId(1), "one");
        a.insert(RumorId(2), "two");
        b.insert(RumorId(2), "two");
        b.insert(RumorId(3), "three");

        // a pulls from b and vice versa using exchanged digests.
        let to_b = a.items_missing_from(&b.digest());
        let to_a = b.items_missing_from(&a.digest());
        assert_eq!(b.apply(to_b), 1);
        assert_eq!(a.apply(to_a), 1);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(RumorId(3)), Some(&"three"));
    }

    #[test]
    fn apply_is_idempotent() {
        let mut s: AntiEntropyStore<u32> = AntiEntropyStore::new();
        assert_eq!(s.apply(vec![(RumorId(1), 10)]), 1);
        assert_eq!(s.apply(vec![(RumorId(1), 10)]), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn empty_store_has_empty_digest() {
        let s: AntiEntropyStore<u8> = AntiEntropyStore::new();
        assert!(s.is_empty());
        assert!(s.digest().is_empty());
    }

    #[test]
    fn equal_id_sets_have_equal_summaries_in_any_order() {
        let ids: Vec<RumorId> = (0..200u64).map(|i| RumorId(i.wrapping_mul(0x9E37))).collect();
        let forward = Summary::from_ids(16, ids.iter().copied());
        let backward = Summary::from_ids(16, ids.iter().rev().copied());
        assert_eq!(forward, backward, "fold is order-independent");
        assert!(forward.diff(&backward).is_empty());
        assert_eq!(forward.len(), 200);
    }

    #[test]
    fn empty_summaries_diff_empty() {
        let a = Summary::new(8);
        let b = Summary::new(8);
        assert!(a.is_empty());
        assert!(a.diff(&b).is_empty());
        assert_eq!(a.bucket_count(), 8);
    }

    #[test]
    fn a_single_extra_id_perturbs_exactly_its_bucket() {
        let base: Vec<RumorId> = (0..100u64).map(RumorId).collect();
        let a = Summary::from_ids(32, base.iter().copied());
        let extra = RumorId(777);
        let b = Summary::from_ids(32, base.iter().copied().chain([extra]));
        let d = a.diff(&b);
        assert_eq!(d, vec![Summary::bucket_of(32, extra) as u32]);
        assert_eq!(b.diff(&a), d, "diff is symmetric");
    }

    #[test]
    fn disjoint_sets_disagree_and_summary_size_does_not_grow() {
        let a = Summary::from_ids(8, (0..500u64).map(RumorId));
        let b = Summary::from_ids(8, (500..1_000u64).map(RumorId));
        assert!(!a.diff(&b).is_empty(), "disjoint stores must diverge");
        assert_eq!(a.bucket_count(), 8, "wire size stays fixed at 8 buckets");
        assert_eq!(a.len(), 500);
    }

    #[test]
    fn mismatched_geometry_is_fully_divergent() {
        let a = Summary::from_ids(4, [RumorId(1)]);
        let b = Summary::from_ids(8, [RumorId(1)]);
        assert_eq!(a.diff(&b), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_bucket_summary_is_rejected() {
        let _ = Summary::new(0);
    }

    #[test]
    fn rebuild_matches_from_ids_across_rounds_and_geometries() {
        let mut scratch = Summary::default();
        // Successive rounds over different id sets, same scratch: each
        // rebuild must be indistinguishable from a fresh construction.
        for round in 0..4u64 {
            let ids: Vec<RumorId> = (0..50 + round * 30).map(|i| RumorId(mix(i, round))).collect();
            scratch.rebuild(16, ids.iter().copied());
            assert_eq!(scratch, Summary::from_ids(16, ids.iter().copied()), "round {round}");
        }
        // A geometry change mid-stream resizes and stays correct.
        let ids: Vec<RumorId> = (0..64u64).map(RumorId).collect();
        scratch.rebuild(8, ids.iter().copied());
        assert_eq!(scratch, Summary::from_ids(8, ids.iter().copied()));
        assert_eq!(scratch.bucket_count(), 8);
    }

    #[test]
    fn clear_empties_without_changing_geometry() {
        let mut s = Summary::from_ids(16, (0..100u64).map(RumorId));
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.bucket_count(), 16);
        assert_eq!(s, Summary::new(16));
    }
}
