//! Rumor mongering with feedback suppression.
//!
//! The *relaxed* dissemination mode of §III-A: "with an uniform redundancy
//! strategy … atomic dissemination is not even necessary as it is enough to
//! reach a proportion of the system that covers the required number of
//! replicas". Feedback-coupled rumor mongering (Demers et al.) stops
//! relaying once a rumor feels "old" — after `k` duplicate receptions — so
//! coverage and cost can be tuned continuously, which E2 sweeps.

use crate::push::RumorId;
use dd_sim::NodeId;
use rand::Rng;
use std::collections::HashMap;

/// Rumor-mongering parameters.
#[derive(Debug, Clone, Copy)]
pub struct MongerConfig {
    /// Peers contacted per relay round.
    pub fanout: u32,
    /// Number of duplicate receptions after which a node loses interest
    /// ("blind counter" variant, `k` in Demers et al.).
    pub lose_interest_after: u32,
}

impl Default for MongerConfig {
    fn default() -> Self {
        MongerConfig { fanout: 2, lose_interest_after: 2 }
    }
}

/// Per-node rumor-mongering state.
#[derive(Debug, Clone, Default)]
pub struct MongerState {
    config: MongerConfig,
    duplicates: HashMap<RumorId, u32>,
}

impl MongerState {
    /// Creates state with the given configuration.
    #[must_use]
    pub fn new(config: MongerConfig) -> Self {
        MongerState { config, duplicates: HashMap::new() }
    }

    /// Processes a reception; returns `(first_time, relay_targets)`.
    /// Unlike infect-and-die push, a node keeps relaying duplicates until
    /// it has seen the rumor `lose_interest_after + 1` times.
    pub fn on_rumor<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        self_id: NodeId,
        peers: &[NodeId],
        id: RumorId,
    ) -> (bool, Vec<NodeId>) {
        let count = self.duplicates.entry(id).or_insert(0);
        let first = *count == 0;
        *count = count.saturating_add(1);
        if *count > self.config.lose_interest_after + 1 {
            return (first, Vec::new());
        }
        use rand::seq::SliceRandom;
        let mut candidates: Vec<NodeId> = peers.iter().copied().filter(|&p| p != self_id).collect();
        candidates.shuffle(rng);
        candidates.truncate(self.config.fanout as usize);
        (first, candidates)
    }

    /// Whether the node has seen the rumor at least once.
    #[must_use]
    pub fn has_seen(&self, id: RumorId) -> bool {
        self.duplicates.contains_key(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(4)
    }

    fn peers(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn keeps_relaying_until_interest_lost() {
        let cfg = MongerConfig { fanout: 3, lose_interest_after: 2 };
        let mut s = MongerState::new(cfg);
        let mut r = rng();
        let p = peers(10);
        let mut relays = 0;
        for _ in 0..6 {
            let (_, t) = s.on_rumor(&mut r, NodeId(0), &p, RumorId(1));
            if !t.is_empty() {
                relays += 1;
            }
        }
        assert_eq!(relays, 3, "first + lose_interest_after receptions relay");
    }

    #[test]
    fn first_flag_only_on_first() {
        let mut s = MongerState::new(MongerConfig::default());
        let mut r = rng();
        let p = peers(5);
        let (a, _) = s.on_rumor(&mut r, NodeId(0), &p, RumorId(2));
        let (b, _) = s.on_rumor(&mut r, NodeId(0), &p, RumorId(2));
        assert!(a);
        assert!(!b);
        assert!(s.has_seen(RumorId(2)));
        assert!(!s.has_seen(RumorId(3)));
    }

    #[test]
    fn relay_targets_exclude_self_and_respect_fanout() {
        let cfg = MongerConfig { fanout: 4, lose_interest_after: 1 };
        let mut s = MongerState::new(cfg);
        let (_, t) = s.on_rumor(&mut rng(), NodeId(2), &peers(10), RumorId(1));
        assert_eq!(t.len(), 4);
        assert!(!t.contains(&NodeId(2)));
    }
}
