//! Eager push gossip — sans-IO core.
//!
//! On first reception of a rumor a node relays it to `fanout` peers
//! ("infect"); duplicates are ignored. In *infect-and-die* mode a node
//! relays exactly once, which matches the analysis in [`crate::analysis`]
//! (every infected node contributes `fanout` edges of the random relay
//! graph). *Infect-forever* re-relays for a bounded number of rounds and is
//! used where extra redundancy is wanted cheaply.

use dd_sim::NodeId;
use rand::Rng;
use std::collections::HashMap;

/// Globally unique rumor identifier (assigned by the origin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RumorId(pub u64);

/// A disseminated item: identifier, hop count and payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rumor<T> {
    /// Unique id deduplicating receptions.
    pub id: RumorId,
    /// Hops travelled so far (origin sends with 0).
    pub hops: u32,
    /// Application payload.
    pub payload: T,
}

/// Relay behaviour on reception.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GossipMode {
    /// Relay to `fanout` peers on first reception only (the analytical
    /// model of §III-A).
    InfectAndDie,
    /// Relay on first reception and again on each of the next
    /// `extra_rounds` duplicate receptions.
    InfectForever {
        /// How many duplicate receptions still trigger a relay.
        extra_rounds: u32,
    },
}

/// Push gossip parameters.
#[derive(Debug, Clone, Copy)]
pub struct PushConfig {
    /// Number of peers each infection relays to.
    pub fanout: u32,
    /// Relay mode.
    pub mode: GossipMode,
    /// Maximum hops a rumor may travel (0 = unlimited). A safety valve for
    /// experiments with very large fanouts.
    pub max_hops: u32,
}

impl Default for PushConfig {
    fn default() -> Self {
        PushConfig { fanout: 8, mode: GossipMode::InfectAndDie, max_hops: 0 }
    }
}

/// Per-node push-gossip state: which rumors were seen and how often.
#[derive(Debug, Clone, Default)]
pub struct PushState {
    config: PushConfig,
    seen: HashMap<RumorId, u32>,
}

impl PushState {
    /// Creates state with the given configuration.
    #[must_use]
    pub fn new(config: PushConfig) -> Self {
        PushState { config, seen: HashMap::new() }
    }

    /// Configuration in use.
    #[must_use]
    pub fn config(&self) -> &PushConfig {
        &self.config
    }

    /// Whether this node has already received the rumor.
    #[must_use]
    pub fn has_seen(&self, id: RumorId) -> bool {
        self.seen.contains_key(&id)
    }

    /// Number of distinct rumors seen.
    #[must_use]
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }

    /// Processes a reception. Returns `(first_time, relay_targets)`:
    /// `first_time` tells the caller whether the payload is new (and should
    /// e.g. be offered to the local sieve), and `relay_targets` the peers to
    /// forward to (empty when the rumor dies here).
    ///
    /// `peers` is the node's current neighbour set (from the peer-sampling
    /// service); targets are drawn without replacement, excluding `self_id`.
    pub fn on_rumor<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        self_id: NodeId,
        peers: &[NodeId],
        id: RumorId,
        hops: u32,
    ) -> (bool, Vec<NodeId>) {
        let count = self.seen.entry(id).or_insert(0);
        let first = *count == 0;
        *count = count.saturating_add(1);
        let relays_left = match self.config.mode {
            GossipMode::InfectAndDie => first,
            GossipMode::InfectForever { extra_rounds } => *count <= extra_rounds + 1,
        };
        if !relays_left {
            return (first, Vec::new());
        }
        if self.config.max_hops > 0 && hops >= self.config.max_hops {
            return (first, Vec::new());
        }
        (first, pick_targets(rng, self_id, peers, self.config.fanout as usize))
    }

    /// Starts dissemination of a new rumor from this node. Returns the
    /// initial relay targets. The rumor is marked seen locally.
    pub fn originate<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        self_id: NodeId,
        peers: &[NodeId],
        id: RumorId,
    ) -> Vec<NodeId> {
        self.seen.insert(id, 1);
        pick_targets(rng, self_id, peers, self.config.fanout as usize)
    }

    /// Forgets rumors older than the caller cares about (garbage
    /// collection; the caller supplies the ids to retain).
    pub fn retain_ids(&mut self, keep: impl Fn(RumorId) -> bool) {
        self.seen.retain(|id, _| keep(*id));
    }
}

/// Draws up to `k` distinct targets from `peers`, excluding `self_id`.
fn pick_targets<R: Rng + ?Sized>(
    rng: &mut R,
    self_id: NodeId,
    peers: &[NodeId],
    k: usize,
) -> Vec<NodeId> {
    use rand::seq::SliceRandom;
    let mut candidates: Vec<NodeId> = peers.iter().copied().filter(|&p| p != self_id).collect();
    candidates.shuffle(rng);
    candidates.truncate(k);
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1)
    }

    fn peers(n: u64) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn first_reception_relays_to_fanout_targets() {
        let mut s = PushState::new(PushConfig { fanout: 4, ..PushConfig::default() });
        let (first, targets) = s.on_rumor(&mut rng(), NodeId(0), &peers(20), RumorId(1), 0);
        assert!(first);
        assert_eq!(targets.len(), 4);
        assert!(!targets.contains(&NodeId(0)), "never relay to self");
    }

    #[test]
    fn duplicate_reception_dies_in_infect_and_die() {
        let mut s = PushState::new(PushConfig::default());
        let mut r = rng();
        let p = peers(20);
        let _ = s.on_rumor(&mut r, NodeId(0), &p, RumorId(1), 0);
        let (first, targets) = s.on_rumor(&mut r, NodeId(0), &p, RumorId(1), 1);
        assert!(!first);
        assert!(targets.is_empty());
    }

    #[test]
    fn infect_forever_relays_extra_rounds() {
        let mut s = PushState::new(PushConfig {
            fanout: 2,
            mode: GossipMode::InfectForever { extra_rounds: 2 },
            max_hops: 0,
        });
        let mut r = rng();
        let p = peers(10);
        let mut relay_rounds = 0;
        for hop in 0..5 {
            let (_, t) = s.on_rumor(&mut r, NodeId(0), &p, RumorId(7), hop);
            if !t.is_empty() {
                relay_rounds += 1;
            }
        }
        assert_eq!(relay_rounds, 3, "first + 2 extra rounds");
    }

    #[test]
    fn max_hops_caps_propagation() {
        let mut s = PushState::new(PushConfig { fanout: 3, max_hops: 2, ..PushConfig::default() });
        let mut r = rng();
        let p = peers(10);
        let (_, t) = s.on_rumor(&mut r, NodeId(0), &p, RumorId(1), 2);
        assert!(t.is_empty(), "at max hops the rumor dies");
        let (_, t2) = s.on_rumor(&mut r, NodeId(0), &p, RumorId(2), 1);
        assert_eq!(t2.len(), 3);
    }

    #[test]
    fn originate_marks_seen_and_relays() {
        let mut s = PushState::new(PushConfig { fanout: 5, ..PushConfig::default() });
        let t = s.originate(&mut rng(), NodeId(3), &peers(30), RumorId(9));
        assert_eq!(t.len(), 5);
        assert!(s.has_seen(RumorId(9)));
        // A later reception of the same rumor is a duplicate.
        let (first, t2) = s.on_rumor(&mut rng(), NodeId(3), &peers(30), RumorId(9), 3);
        assert!(!first);
        assert!(t2.is_empty());
    }

    #[test]
    fn targets_are_distinct() {
        let mut s = PushState::new(PushConfig { fanout: 8, ..PushConfig::default() });
        let t = s.originate(&mut rng(), NodeId(0), &peers(9), RumorId(1));
        let mut u = t.clone();
        u.sort();
        u.dedup();
        assert_eq!(t.len(), u.len());
        assert_eq!(t.len(), 8, "all peers used when fanout exceeds candidates");
    }

    #[test]
    fn fanout_larger_than_peers_is_bounded() {
        let mut s = PushState::new(PushConfig { fanout: 50, ..PushConfig::default() });
        let t = s.originate(&mut rng(), NodeId(0), &peers(4), RumorId(1));
        assert_eq!(t.len(), 3, "self excluded, remaining peers used");
    }

    #[test]
    fn retain_ids_garbage_collects() {
        let mut s = PushState::new(PushConfig::default());
        let mut r = rng();
        let p = peers(5);
        for i in 0..10 {
            let _ = s.on_rumor(&mut r, NodeId(0), &p, RumorId(i), 0);
        }
        assert_eq!(s.seen_count(), 10);
        s.retain_ids(|id| id.0 >= 5);
        assert_eq!(s.seen_count(), 5);
        assert!(!s.has_seen(RumorId(0)));
        assert!(s.has_seen(RumorId(5)));
    }
}
