//! # dd-trace — causal tracing with critical-path latency attribution
//!
//! The observability layer between the metrics plane (which can say *that*
//! tail latency happened) and the audit plane (which can say *that* the
//! history was safe): a Dapper-style span recorder that explains *why* a
//! specific operation took as long as it did.
//!
//! Every traced client operation becomes a [`Trace`]: a tree of [`Span`]s
//! — client submit → soft coordinator → per-target waits → persist
//! stores/serves — stamped in virtual time, so a traced run replays
//! byte-identically from its seed. The [`Recorder`] implements
//! [`dd_sim::Tracer`] and is installed on the simulator; protocol code
//! opens and closes spans through [`dd_sim::Ctx::tracer`], which costs one
//! branch when no recorder is installed.
//!
//! On top of raw spans sit the analysis kernels:
//!
//! * [`Trace::critical_path`] — the chain of spans whose removal would
//!   have completed the operation sooner, extracted by a backward walk
//!   from the root's completion;
//! * [`TraceReport`] — per-hop and per-tier latency breakdown over every
//!   traced op's critical path, plus a slowest-ops digest
//!   ([`OpDigest`]) naming the dominant hop of each tail op;
//! * [`TraceSet::to_chrome_json`] / [`Trace::to_chrome_json`] — Chrome
//!   trace-event JSON, so any run opens in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev).
//!
//! ```
//! use dd_sim::{NodeId, Time, Tracer};
//! use dd_trace::Recorder;
//!
//! let mut rec = Recorder::default();
//! let root = rec.open(Time(0), NodeId(9), 1, None, "client.get");
//! let wait = rec.open(Time(2), NodeId(3), 1, Some(root), "soft.fetch_wait");
//! rec.close(Time(40), 1, wait, true);
//! rec.close(Time(45), 1, root, true);
//! let set = rec.finish();
//! let trace = set.get(1).unwrap();
//! assert_eq!(trace.duration(), 45);
//! // The 38-tick wait on node 3 dominates the critical path.
//! let path = trace.critical_path();
//! let top = path.iter().max_by_key(|s| s.ticks()).unwrap();
//! assert_eq!((trace.span(top.span).label, top.ticks()), ("soft.fetch_wait", 38));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dd_sim::{NodeId, Time, Tracer};
use std::any::Any;
use std::collections::HashMap;
use std::fmt::Write as _;

/// One timed unit of work (or waiting) attributed to one node, nested
/// under a parent span of the same operation's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Id within the operation's trace; spans are stored in id order and
    /// the root is always span 0.
    pub id: u32,
    /// Parent span, `None` for the root.
    pub parent: Option<u32>,
    /// Node the work (or waiting) happened on.
    pub node: NodeId,
    /// What the span covers, `tier.what` by convention (`soft.fetch_wait`,
    /// `persist.store`, ...).
    pub label: &'static str,
    /// Open time, in virtual ticks.
    pub start: u64,
    /// Close time; `None` while still open (a finished [`TraceSet`] has
    /// every span closed).
    pub end: Option<u64>,
    /// Whether the span completed its work (`false`: struck by the
    /// failure detector, expired by a deadline sweep, or still open when
    /// the trace was finished) — the signal that pins a timeout on the
    /// hop that never replied.
    pub answered: bool,
}

impl Span {
    /// Close time, treating a still-open span as instantaneous.
    #[must_use]
    pub fn end_resolved(&self) -> u64 {
        self.end.unwrap_or(self.start)
    }

    /// Ticks between open and close.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.end_resolved().saturating_sub(self.start)
    }

    /// The tier prefix of the label (`soft` of `soft.fetch_wait`).
    #[must_use]
    pub fn tier(&self) -> &'static str {
        self.label.split_once('.').map_or(self.label, |(tier, _)| tier)
    }
}

/// One operation's span tree. Spans are stored in open order, `spans[i]`
/// has `id == i`, and span 0 is the root (the client-side envelope of the
/// whole operation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The traced operation (the client request id).
    pub op: u64,
    /// Every span opened for the operation, in id order.
    pub spans: Vec<Span>,
}

/// One segment of a critical path: the interval `[from, to]` during which
/// `span` was the reason the operation had not yet completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSeg {
    /// The responsible span's id.
    pub span: u32,
    /// Segment start, in virtual ticks.
    pub from: u64,
    /// Segment end, in virtual ticks.
    pub to: u64,
}

impl PathSeg {
    /// Length of the segment.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.to - self.from
    }
}

impl Trace {
    /// The root span.
    #[must_use]
    pub fn root(&self) -> &Span {
        &self.spans[0]
    }

    /// The span with this id.
    ///
    /// # Panics
    /// Panics if the id is not in this trace.
    #[must_use]
    pub fn span(&self, id: u32) -> &Span {
        &self.spans[id as usize]
    }

    /// End-to-end duration: root open to root close.
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.root().ticks()
    }

    /// Extracts the operation's critical path: the chain of spans whose
    /// removal would have completed the operation sooner, as contiguous
    /// time segments from root open to root close.
    ///
    /// Walks backwards from the root's completion. At each cursor
    /// position the *latest-finishing* child that closed by the cursor is
    /// the binding dependency — everything that finished earlier was
    /// already waiting on it — so the walk descends into that child at its
    /// close time, resumes on the parent at the child's open time, and
    /// attributes any uncovered gap to the parent itself. Zero-length
    /// segments are dropped; an instantaneous trace yields an empty path.
    #[must_use]
    pub fn critical_path(&self) -> Vec<PathSeg> {
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); self.spans.len()];
        for s in &self.spans {
            if let Some(p) = s.parent {
                children[p as usize].push(s.id);
            }
        }
        let mut out = Vec::new();
        self.walk(&children, 0, self.root().end_resolved(), &mut out);
        out.reverse();
        out
    }

    /// Backward walk under `idx` ending at `cursor`; pushes segments in
    /// reverse chronological order.
    fn walk(&self, children: &[Vec<u32>], idx: u32, mut cursor: u64, out: &mut Vec<PathSeg>) {
        let own = &self.spans[idx as usize];
        loop {
            // The binding dependency: the latest-finishing child that
            // closed by the cursor and opened before it (the open-strictly-
            // before condition keeps instantaneous spans from looping).
            let pick = children[idx as usize]
                .iter()
                .map(|&c| &self.spans[c as usize])
                .filter(|c| c.end_resolved() <= cursor && c.start < cursor)
                .max_by_key(|c| (c.end_resolved(), c.id));
            let Some(child) = pick else {
                let from = own.start.min(cursor);
                if cursor > from {
                    out.push(PathSeg { span: idx, from, to: cursor });
                }
                return;
            };
            let (child_id, child_start, child_end) = (child.id, child.start, child.end_resolved());
            if child_end < cursor {
                // The parent's own trailing work after the child closed.
                out.push(PathSeg { span: idx, from: child_end, to: cursor });
            }
            self.walk(children, child_id, child_end, out);
            cursor = child_start;
        }
    }

    /// This trace alone as Chrome trace-event JSON (see
    /// [`TraceSet::to_chrome_json`]).
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        chrome_json(std::slice::from_ref(self))
    }
}

/// The span sink the simulator drives during a traced run. Install with
/// `Sim::set_tracer(Box::<Recorder>::default())`, run, then take it back
/// and call [`Recorder::finish`].
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    traces: Vec<Trace>,
    index: HashMap<u64, usize>,
}

impl Recorder {
    /// Number of operations recorded so far.
    #[must_use]
    pub fn ops(&self) -> usize {
        self.traces.len()
    }

    /// Finishes recording: closes every dangling span (at the trace's
    /// last close time, marked unanswered) and returns the immutable span
    /// trees in first-opened order.
    #[must_use]
    pub fn finish(mut self) -> TraceSet {
        for t in &mut self.traces {
            let horizon = t.spans.iter().filter_map(|s| s.end).max();
            let horizon =
                horizon.unwrap_or_else(|| t.spans.iter().map(|s| s.start).max().unwrap_or(0));
            for s in &mut t.spans {
                if s.end.is_none() {
                    s.end = Some(horizon.max(s.start));
                    s.answered = false;
                }
            }
        }
        TraceSet { traces: self.traces }
    }
}

impl Tracer for Recorder {
    fn open(
        &mut self,
        at: Time,
        node: NodeId,
        op: u64,
        parent: Option<u32>,
        label: &'static str,
    ) -> u32 {
        let idx = *self.index.entry(op).or_insert_with(|| {
            self.traces.push(Trace { op, spans: Vec::new() });
            self.traces.len() - 1
        });
        let spans = &mut self.traces[idx].spans;
        let id = spans.len() as u32;
        debug_assert!(parent.map_or(id == 0, |p| p < id), "parent must pre-exist");
        spans.push(Span { id, parent, node, label, start: at.0, end: None, answered: false });
        id
    }

    fn close(&mut self, at: Time, op: u64, span: u32, answered: bool) {
        let Some(&idx) = self.index.get(&op) else { return };
        let Some(s) = self.traces[idx].spans.get_mut(span as usize) else { return };
        // First close wins: a span struck unanswered stays unanswered
        // even if a late reply lands after the strike.
        if s.end.is_none() {
            s.end = Some(at.0.max(s.start));
            s.answered = answered;
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Every trace a finished run recorded, in first-opened order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSet {
    /// The recorded span trees.
    pub traces: Vec<Trace>,
}

impl TraceSet {
    /// Number of traced operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when nothing was traced.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// The trace of operation `op`, if it was recorded.
    #[must_use]
    pub fn get(&self, op: u64) -> Option<&Trace> {
        self.traces.iter().find(|t| t.op == op)
    }

    /// Exports every trace as Chrome trace-event JSON: open the string
    /// (saved as a `.json` file) in `chrome://tracing` or
    /// <https://ui.perfetto.dev>. Each node renders as a process row
    /// (`pid` = node id), each operation as a thread within it (`tid` =
    /// op), and each span as a complete event with its virtual-time
    /// open/duration; unanswered spans carry `"answered": false` in their
    /// args. Deterministic: same traces, same bytes.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        chrome_json(&self.traces)
    }
}

fn chrome_json(traces: &[Trace]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut nodes: Vec<u64> =
        traces.iter().flat_map(|t| t.spans.iter().map(|s| s.node.0)).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let mut first = true;
    for n in nodes {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{n},\"tid\":0,\
             \"args\":{{\"name\":\"node {n}\"}}}}"
        );
    }
    for t in traces {
        for s in &t.spans {
            sep(&mut out, &mut first);
            let parent = s.parent.map_or_else(|| "null".to_owned(), |p| p.to_string());
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":{},\"args\":{{\"span\":{},\"parent\":{},\"answered\":{}}}}}",
                s.label,
                s.tier(),
                s.start,
                s.ticks(),
                s.node.0,
                t.op,
                s.id,
                parent,
                s.answered,
            );
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

/// One row of a per-hop (or per-tier) latency breakdown: how much
/// critical-path time a span label accounted for across every traced op.
#[derive(Debug, Clone, PartialEq)]
pub struct HopRow {
    /// The span label (per-hop rows) or tier prefix (per-tier rows).
    pub label: String,
    /// Critical-path segments attributed to the label.
    pub segments: u64,
    /// Critical-path ticks attributed to the label.
    pub ticks: u64,
    /// Fraction of all critical-path ticks (0.0 when nothing was traced).
    pub share: f64,
}

/// One step of a slowest-op digest's critical path, resolved to the
/// owning span's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathStep {
    /// The responsible span's label.
    pub label: &'static str,
    /// Node the span ran on.
    pub node: NodeId,
    /// Segment start, in virtual ticks.
    pub from: u64,
    /// Segment end, in virtual ticks.
    pub to: u64,
    /// Whether the responsible span completed its work.
    pub answered: bool,
}

impl PathStep {
    /// Length of the step.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.to - self.from
    }
}

/// One slowest-op entry: the op, its end-to-end latency, and its critical
/// path resolved to labels and nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpDigest {
    /// The operation (client request id).
    pub op: u64,
    /// End-to-end duration in virtual ticks.
    pub ticks: u64,
    /// The critical path, in time order.
    pub path: Vec<PathStep>,
}

impl OpDigest {
    /// The longest *hop* of the path — where the op actually spent its
    /// time between nodes. Segments credited to the root client span
    /// (submission and completion-poll time on the issuing node) are
    /// excluded unless the path has no interior hop at all; ties resolve
    /// to the later step.
    #[must_use]
    pub fn dominant(&self) -> Option<&PathStep> {
        self.path
            .iter()
            .filter(|s| !s.label.starts_with("client."))
            .max_by_key(|s| (s.ticks(), s.from))
            .or_else(|| self.path.iter().max_by_key(|s| (s.ticks(), s.from)))
    }
}

/// How many slowest ops a [`TraceReport`] digests.
pub const SLOWEST_OPS: usize = 5;

/// The analysis layer over a finished [`TraceSet`]: critical paths of
/// every traced op, aggregated per hop label and per tier, plus the
/// slowest-ops digest. Attached to a `ScenarioReport` by a traced
/// scenario run; the raw set rides along for export and drill-down.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Operations traced.
    pub ops: u64,
    /// Spans recorded across all operations.
    pub spans: u64,
    /// Per-hop critical-path breakdown, largest share first.
    pub hops: Vec<HopRow>,
    /// Per-tier critical-path breakdown (label prefix before the `.`),
    /// largest share first.
    pub tiers: Vec<HopRow>,
    /// The [`SLOWEST_OPS`] slowest operations, slowest first.
    pub slowest: Vec<OpDigest>,
    /// The raw traces the analysis was computed from.
    pub set: TraceSet,
}

impl TraceReport {
    /// Analyses a finished trace set.
    #[must_use]
    pub fn build(set: TraceSet) -> Self {
        let mut hop_acc: HashMap<&'static str, (u64, u64)> = HashMap::new();
        let mut tier_acc: HashMap<&'static str, (u64, u64)> = HashMap::new();
        let mut digests: Vec<OpDigest> = Vec::with_capacity(set.traces.len());
        let mut spans = 0u64;
        for t in &set.traces {
            spans += t.spans.len() as u64;
            let path = t.critical_path();
            let mut steps = Vec::with_capacity(path.len());
            for seg in path {
                let s = t.span(seg.span);
                let hop = hop_acc.entry(s.label).or_default();
                hop.0 += 1;
                hop.1 += seg.ticks();
                let tier = tier_acc.entry(s.tier()).or_default();
                tier.0 += 1;
                tier.1 += seg.ticks();
                steps.push(PathStep {
                    label: s.label,
                    node: s.node,
                    from: seg.from,
                    to: seg.to,
                    answered: s.answered,
                });
            }
            digests.push(OpDigest { op: t.op, ticks: t.duration(), path: steps });
        }
        digests.sort_by_key(|d| (std::cmp::Reverse(d.ticks), d.op));
        digests.truncate(SLOWEST_OPS);
        TraceReport {
            ops: set.traces.len() as u64,
            spans,
            hops: rows(hop_acc),
            tiers: rows(tier_acc),
            slowest: digests,
            set,
        }
    }

    /// Renders the per-hop table and slowest-op paths as a compact text
    /// block (what `examples/traced_drill.rs` prints).
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} ops traced, {} spans", self.ops, self.spans);
        let _ = writeln!(out, "critical-path time by hop:");
        for h in &self.hops {
            let _ = writeln!(
                out,
                "  {:<24} {:>8} ticks  {:>5.1}%  ({} segments)",
                h.label,
                h.ticks,
                h.share * 100.0,
                h.segments
            );
        }
        for d in &self.slowest {
            let _ = writeln!(out, "op {} took {} ticks; critical path:", d.op, d.ticks);
            for s in &d.path {
                let _ = writeln!(
                    out,
                    "  t{:>6}..t{:<6} {:>6} ticks  {:<24} node {}{}",
                    s.from,
                    s.to,
                    s.ticks(),
                    s.label,
                    s.node.0,
                    if s.answered { "" } else { "  [never answered]" }
                );
            }
        }
        out
    }
}

fn rows(acc: HashMap<&'static str, (u64, u64)>) -> Vec<HopRow> {
    let total: u64 = acc.values().map(|&(_, t)| t).sum();
    let mut rows: Vec<HopRow> = acc
        .into_iter()
        .map(|(label, (segments, ticks))| HopRow {
            label: label.to_owned(),
            segments,
            ticks,
            share: if total == 0 { 0.0 } else { ticks as f64 / total as f64 },
        })
        .collect();
    rows.sort_by(|a, b| (b.ticks, &a.label).cmp(&(a.ticks, &b.label)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-builds a trace through the public `Tracer` API.
    struct Builder {
        rec: Recorder,
    }

    impl Builder {
        fn new() -> Self {
            Builder { rec: Recorder::default() }
        }
        fn open(&mut self, at: u64, node: u64, parent: Option<u32>, label: &'static str) -> u32 {
            self.rec.open(Time(at), NodeId(node), 1, parent, label)
        }
        fn close(&mut self, at: u64, span: u32, answered: bool) {
            self.rec.close(Time(at), 1, span, answered);
        }
        fn finish(self) -> Trace {
            let mut set = self.rec.finish();
            set.traces.remove(0)
        }
    }

    fn segs(t: &Trace) -> Vec<(u32, u64, u64)> {
        t.critical_path().iter().map(|s| (s.span, s.from, s.to)).collect()
    }

    #[test]
    fn fan_out_blames_the_slowest_branch() {
        // Root fans out to three children; the middle one finishes last.
        let mut b = Builder::new();
        let root = b.open(0, 9, None, "client.get");
        let a = b.open(5, 1, Some(root), "soft.fetch_wait");
        let c = b.open(5, 2, Some(root), "soft.fetch_wait");
        let d = b.open(5, 3, Some(root), "soft.fetch_wait");
        b.close(20, a, true);
        b.close(80, c, true);
        b.close(40, d, true);
        b.close(90, root, true);
        let t = b.finish();
        // Path: root 0..5 (dispatch), child c 5..80 (the straggler),
        // root 80..90 (harvest). Faster branches never appear.
        assert_eq!(segs(&t), vec![(root, 0, 5), (c, 5, 80), (root, 80, 90)]);
        assert_eq!(t.duration(), 90);
    }

    #[test]
    fn straggler_chain_descends_through_nested_waits() {
        // Coordinator span under the root; its own slowest wait nests one
        // level deeper — the walk must descend through both.
        let mut b = Builder::new();
        let root = b.open(0, 9, None, "client.multi_get");
        let coord = b.open(10, 1, Some(root), "soft.multi_get");
        let w1 = b.open(10, 4, Some(coord), "soft.tagfetch_wait");
        let w2 = b.open(10, 5, Some(coord), "soft.tagfetch_wait");
        b.close(30, w1, true);
        b.close(200, w2, false); // struck: never answered
        b.close(200, coord, true);
        b.close(210, root, true);
        let t = b.finish();
        assert_eq!(segs(&t), vec![(root, 0, 10), (w2, 10, 200), (root, 200, 210)]);
        // The dominant hop is the unanswered wait on node 5.
        let report = TraceReport::build(TraceSet { traces: vec![t] });
        let top = report.slowest[0].dominant().unwrap();
        assert_eq!((top.node, top.answered), (NodeId(5), false));
        assert_eq!(report.hops[0].label, "soft.tagfetch_wait");
        assert!(report.hops[0].share > 0.9);
    }

    #[test]
    fn retry_shape_credits_the_retry_not_the_first_attempt() {
        // A wait is struck, then re-issued (peer restore re-fetch): the
        // path runs through the *second* attempt, with the gap between
        // attempts attributed to the parent.
        let mut b = Builder::new();
        let root = b.open(0, 9, None, "client.get");
        let first = b.open(5, 2, Some(root), "soft.fetch_wait");
        b.close(50, first, false);
        let retry = b.open(70, 3, Some(root), "soft.fetch_wait");
        b.close(100, retry, true);
        b.close(100, root, true);
        let t = b.finish();
        assert_eq!(segs(&t), vec![(root, 0, 5), (first, 5, 50), (root, 50, 70), (retry, 70, 100)]);
    }

    #[test]
    fn instantaneous_spans_terminate_the_walk() {
        // A persist store is instantaneous (the sim handler runs in zero
        // virtual time); the walk must not loop on it.
        let mut b = Builder::new();
        let root = b.open(0, 9, None, "client.put");
        let order = b.open(25, 1, Some(root), "soft.order");
        b.close(25, order, true);
        b.close(50, root, true);
        let t = b.finish();
        assert_eq!(segs(&t), vec![(root, 0, 25), (root, 25, 50)]);
        let zero = Trace {
            op: 7,
            spans: vec![Span {
                id: 0,
                parent: None,
                node: NodeId(1),
                label: "client.put",
                start: 3,
                end: Some(3),
                answered: true,
            }],
        };
        assert_eq!(zero.critical_path(), vec![]);
    }

    #[test]
    fn finish_closes_dangling_spans_unanswered_at_the_horizon() {
        let mut rec = Recorder::default();
        let root = rec.open(Time(0), NodeId(9), 3, None, "client.get");
        let wait = rec.open(Time(5), NodeId(2), 3, Some(root), "soft.fetch_wait");
        rec.close(Time(60), 3, root, true);
        let _ = wait;
        let set = rec.finish();
        let t = set.get(3).unwrap();
        assert_eq!(t.spans[1].end, Some(60), "dangling wait closed at the trace horizon");
        assert!(!t.spans[1].answered);
        assert!(t.spans[0].answered);
    }

    #[test]
    fn first_close_wins_over_late_replies() {
        let mut rec = Recorder::default();
        let root = rec.open(Time(0), NodeId(9), 3, None, "client.get");
        let wait = rec.open(Time(5), NodeId(2), 3, Some(root), "soft.fetch_wait");
        rec.close(Time(30), 3, wait, false); // strike
        rec.close(Time(44), 3, wait, true); // late reply after the strike
        rec.close(Time(50), 3, root, true);
        let t = rec.finish().get(3).unwrap().clone();
        assert_eq!((t.spans[1].end, t.spans[1].answered), (Some(30), false));
    }

    #[test]
    fn report_aggregates_hops_and_tiers() {
        let mut rec = Recorder::default();
        for op in 0..4u64 {
            let root = rec.open(Time(0), NodeId(9), op, None, "client.get");
            let wait = rec.open(Time(5), NodeId(op), op, Some(root), "soft.fetch_wait");
            rec.close(Time(5 + 10 * (op + 1)), op, wait, true);
            rec.close(Time(10 + 10 * (op + 1)), op, root, true);
        }
        let report = TraceReport::build(rec.finish());
        assert_eq!((report.ops, report.spans), (4, 8));
        assert_eq!(report.slowest.len(), 4);
        assert_eq!(report.slowest[0].op, 3, "slowest first");
        assert!(report.slowest[0].ticks > report.slowest[3].ticks);
        let total: f64 = report.hops.iter().map(|h| h.share).sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to 1, got {total}");
        let tiers: Vec<&str> = report.tiers.iter().map(|t| t.label.as_str()).collect();
        assert_eq!(tiers, vec!["soft", "client"], "waits dominate the client envelope");
        assert!(report.summary().contains("critical-path time by hop"));
    }

    #[test]
    fn chrome_export_is_deterministic_and_well_formed() {
        let mut rec = Recorder::default();
        let root = rec.open(Time(0), NodeId(9), 1, None, "client.get");
        let wait = rec.open(Time(5), NodeId(2), 1, Some(root), "soft.fetch_wait");
        rec.close(Time(30), 1, wait, false);
        rec.close(Time(40), 1, root, true);
        let set = rec.finish();
        let json = set.to_chrome_json();
        assert_eq!(json, set.clone().to_chrome_json(), "same traces, same bytes");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\"") && json.contains("\"name\":\"node 2\""));
        assert!(json.contains(
            "{\"name\":\"soft.fetch_wait\",\"cat\":\"soft\",\"ph\":\"X\",\"ts\":5,\"dur\":25,\
             \"pid\":2,\"tid\":1,\"args\":{\"span\":1,\"parent\":0,\"answered\":false}}"
        ));
        assert!(json.contains("\"parent\":null"));
        assert_eq!(set.get(1).unwrap().to_chrome_json(), json, "single-trace export matches");
        // Balanced braces/brackets — a cheap well-formedness proxy in a
        // workspace without a JSON parser.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }
}
