//! The per-key version oracle: latest *acknowledged* version per key.
//!
//! One implementation serves two consumers: the scenario plane's phase
//! engine attributes read staleness against it while a run executes, and
//! the convergence checker rebuilds one from a recorded [`crate::History`]
//! to judge the post-settle replica snapshot. (It was born as a private
//! `HashMap` inside the phase engine; extracting it here deleted the
//! duplicate the checker would otherwise have grown.)

use crate::history::{History, OpDesc, Outcome};
use dd_dht::Version;
use std::collections::BTreeMap;

/// Latest acknowledged version per key. Iteration is in key order, so
/// anything derived from a walk over the oracle is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionOracle {
    latest: BTreeMap<String, Version>,
}

impl VersionOracle {
    /// An empty oracle.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the oracle from a history: every acknowledged write — puts,
    /// deletes, and each ordered item of a batched write — feeds it.
    #[must_use]
    pub fn from_history(history: &History) -> Self {
        let mut oracle = Self::new();
        for op in history.ops() {
            match (&op.desc, &op.outcome) {
                (
                    OpDesc::Put { key, .. } | OpDesc::Delete { key },
                    Some(Outcome::Write { version }),
                ) => {
                    oracle.note_ack(key, *version);
                }
                (OpDesc::MultiPut { keys, .. }, Some(Outcome::MultiPut { versions, .. })) => {
                    for (key, version) in crate::history::resolve_batch_acks(keys, versions) {
                        oracle.note_ack(key, version);
                    }
                }
                _ => {}
            }
        }
        oracle
    }

    /// Records an acknowledged write of `key` at `version`.
    pub fn note_ack(&mut self, key: &str, version: Version) {
        let slot = self.latest.entry(key.to_owned()).or_insert(Version::ZERO);
        *slot = (*slot).max(version);
    }

    /// Latest acknowledged version of `key` ([`Version::ZERO`] when no
    /// write of it was ever acknowledged).
    #[must_use]
    pub fn latest(&self, key: &str) -> Version {
        self.latest.get(key).copied().unwrap_or(Version::ZERO)
    }

    /// Whether a read of `key` returning `version` is stale — older than
    /// a version already acknowledged to some client.
    #[must_use]
    pub fn is_stale(&self, key: &str, version: Version) -> bool {
        version < self.latest(key)
    }

    /// Iterates `(key, latest acked version)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Version)> + '_ {
        self.latest.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of keys with at least one acknowledged write.
    #[must_use]
    pub fn len(&self) -> usize {
        self.latest.len()
    }

    /// Whether no write was ever acknowledged.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.latest.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::Recorder;

    #[test]
    fn acks_ratchet_upward_only() {
        let mut o = VersionOracle::new();
        o.note_ack("k", Version(3));
        o.note_ack("k", Version(1));
        assert_eq!(o.latest("k"), Version(3));
        assert!(o.is_stale("k", Version(2)));
        assert!(!o.is_stale("k", Version(3)));
        assert_eq!(o.latest("unwritten"), Version::ZERO);
    }

    #[test]
    fn from_history_folds_every_ack_kind() {
        let mut rec = Recorder::new();
        rec.invoke(1, 1, 0, OpDesc::Put { key: "a".into(), tag: None });
        rec.complete(1, 5, Outcome::Write { version: Version(1) });
        rec.invoke(2, 1, 6, OpDesc::Delete { key: "a".into() });
        rec.complete(2, 9, Outcome::Write { version: Version(2) });
        let bh = dd_sim::rng::stable_hash(b"b");
        rec.invoke(3, 1, 10, OpDesc::MultiPut { keys: vec!["b".into()], tag: None });
        rec.complete(3, 15, Outcome::MultiPut { versions: vec![(bh, Version(4))], want: 1 });
        // Un-acked ops contribute nothing.
        rec.invoke(4, 1, 16, OpDesc::Put { key: "c".into(), tag: None });
        let o = VersionOracle::from_history(rec.history());
        assert_eq!(o.latest("a"), Version(2));
        assert_eq!(o.latest("b"), Version(4));
        assert_eq!(o.latest("c"), Version::ZERO);
        let keys: Vec<&str> = o.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"], "iteration is key-ordered");
    }
}
