//! The operation history: invocation/completion pairs, append-only.
//!
//! A [`Recorder`] is installed behind an `Option` in the client plane, so
//! capture is zero-cost when disabled: the hooks test the option and build
//! nothing otherwise. Every recorded value is owned data (key strings,
//! version numbers) — the history stays valid after the cluster is gone.

use dd_dht::Version;
use std::collections::HashMap;

/// What an operation *was*, as submitted (the invocation half of the
/// pair). Keys and tags are recorded as owned strings so a [`History`]
/// outlives the run that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpDesc {
    /// A single write.
    Put {
        /// Key written.
        key: String,
        /// Correlation tag, if any.
        tag: Option<String>,
    },
    /// A single read.
    Get {
        /// Key read.
        key: String,
    },
    /// A versioned delete.
    Delete {
        /// Key deleted.
        key: String,
    },
    /// An attribute range scan.
    Scan,
    /// A cluster-wide aggregate.
    Aggregate,
    /// A batched write.
    MultiPut {
        /// Keys of the batch, in submission order.
        keys: Vec<String>,
        /// The batch's shared tag when every item carries the same one.
        tag: Option<String>,
    },
    /// A tag-scoped read.
    MultiGet {
        /// Tag read.
        tag: String,
    },
}

/// Why a recorded operation failed (mirrors the client plane's error
/// taxonomy; batch partiality is carried on the outcome itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpFailure {
    /// No completion within the client timeout window.
    Timeout,
    /// No live soft node existed at submission.
    NoLiveEntry,
}

/// What an operation *returned* (the completion half of the pair).
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A put or delete was ordered at this version.
    Write {
        /// Version assigned by the key's coordinator.
        version: Version,
    },
    /// A read completed; `None` means the key read as absent.
    Read {
        /// Version of the returned tuple, if one was found.
        version: Option<Version>,
    },
    /// A scan completed.
    Scan {
        /// Tuples returned.
        tuples: u64,
    },
    /// An aggregate completed.
    Aggregate,
    /// A batched write completed (possibly partially: `versions` shorter
    /// than `want` means dead key coordinators were given up on).
    MultiPut {
        /// `(key_hash, version)` per ordered item.
        versions: Vec<(u64, Version)>,
        /// Items submitted.
        want: u32,
    },
    /// A tag-scoped read completed.
    MultiGet {
        /// `(key, version)` per returned live tuple.
        items: Vec<(String, Version)>,
        /// Whether every contacted replica answered (a *complete* union);
        /// `false` means the deadline sweep cut the gather short.
        complete: bool,
    },
    /// The operation failed outright.
    Failed(OpFailure),
}

/// Resolves a batched write's acknowledged `(key_hash, version)` pairs
/// ([`Outcome::MultiPut`]) against its invocation's key list
/// ([`OpDesc::MultiPut`]), yielding `(key, version)` per ordered item —
/// the one place the hash-matching rule lives, shared by the version
/// oracle and the read-your-writes checker.
pub(crate) fn resolve_batch_acks<'a>(
    keys: &'a [String],
    versions: &'a [(u64, Version)],
) -> impl Iterator<Item = (&'a str, Version)> {
    keys.iter().flat_map(move |key| {
        let kh = dd_sim::rng::stable_hash(key.as_bytes());
        versions
            .iter()
            .filter(move |&&(vkh, _)| vkh == kh)
            .map(move |&(_, version)| (key.as_str(), version))
    })
}

/// One recorded operation: an invocation, and (once resolved) its
/// completion. The unit of every checker's witnessing sub-history.
#[derive(Debug, Clone, PartialEq)]
pub struct Op {
    /// Cluster-unique request id.
    pub req: u64,
    /// Issuing client session.
    pub session: u64,
    /// Workload phase active at submission (scenario runs), if any.
    pub phase: Option<u32>,
    /// Virtual time of submission.
    pub invoked: u64,
    /// What was submitted.
    pub desc: OpDesc,
    /// Virtual time of resolution; `None` while still in flight (an op
    /// never resolved by the end of the run stays open in the history).
    pub completed: Option<u64>,
    /// What came back; `None` while still in flight.
    pub outcome: Option<Outcome>,
}

impl Op {
    /// Whether this op resolved (successfully or not).
    #[must_use]
    pub fn is_resolved(&self) -> bool {
        self.outcome.is_some()
    }
}

/// An append-only operation history. Ops are stored in invocation order;
/// completions fill in the matching op in place, so iteration order is
/// deterministic for a deterministic run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    ops: Vec<Op>,
    by_req: HashMap<u64, usize>,
}

impl History {
    /// An empty history.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a history from raw ops (the mutation-testing entry point:
    /// corrupt a recorded history's ops, reassemble, re-check).
    #[must_use]
    pub fn from_ops(ops: Vec<Op>) -> Self {
        let by_req = ops.iter().enumerate().map(|(i, o)| (o.req, i)).collect();
        History { ops, by_req }
    }

    /// The recorded ops, in invocation order.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The op recorded for a request id.
    #[must_use]
    pub fn op(&self, req: u64) -> Option<&Op> {
        self.by_req.get(&req).map(|&i| &self.ops[i])
    }

    /// Records an invocation. Later invocations must carry later-or-equal
    /// times (the recorder is fed from one virtual clock).
    pub fn record_invoke(
        &mut self,
        req: u64,
        session: u64,
        phase: Option<u32>,
        at: u64,
        desc: OpDesc,
    ) {
        self.by_req.insert(req, self.ops.len());
        self.ops.push(Op {
            req,
            session,
            phase,
            invoked: at,
            desc,
            completed: None,
            outcome: None,
        });
    }

    /// Records the completion of a previously invoked op. Unknown request
    /// ids are ignored (e.g. ops submitted before recording started).
    pub fn record_complete(&mut self, req: u64, at: u64, outcome: Outcome) {
        if let Some(&i) = self.by_req.get(&req) {
            let op = &mut self.ops[i];
            if op.outcome.is_none() {
                op.completed = Some(at);
                op.outcome = Some(outcome);
            }
        }
    }

    /// Number of recorded ops.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The capture front-end the client plane drives: a [`History`] plus the
/// mutable phase context (scenario runs stamp ops with the workload phase
/// that issued them).
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    history: History,
    phase: Option<u32>,
}

impl Recorder {
    /// A recorder with an empty history and no phase context.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the workload phase stamped on subsequent invocations.
    pub fn set_phase(&mut self, phase: Option<u32>) {
        self.phase = phase;
    }

    /// Records an invocation at virtual time `at`.
    pub fn invoke(&mut self, req: u64, session: u64, at: u64, desc: OpDesc) {
        self.history.record_invoke(req, session, self.phase, at, desc);
    }

    /// Records a completion at virtual time `at`.
    pub fn complete(&mut self, req: u64, at: u64, outcome: Outcome) {
        self.history.record_complete(req, at, outcome);
    }

    /// The history captured so far.
    #[must_use]
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Consumes the recorder, yielding the captured history.
    #[must_use]
    pub fn finish(self) -> History {
        self.history
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invoke_then_complete_pairs_up() {
        let mut h = History::new();
        h.record_invoke(5, 1, Some(2), 100, OpDesc::Get { key: "k".into() });
        assert!(!h.op(5).unwrap().is_resolved());
        h.record_complete(5, 130, Outcome::Read { version: Some(Version(3)) });
        let op = h.op(5).unwrap();
        assert_eq!(op.completed, Some(130));
        assert_eq!(op.phase, Some(2));
        assert!(op.is_resolved());
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn unknown_or_duplicate_completions_are_ignored() {
        let mut h = History::new();
        h.record_complete(9, 10, Outcome::Aggregate);
        assert!(h.is_empty());
        h.record_invoke(1, 1, None, 0, OpDesc::Scan);
        h.record_complete(1, 5, Outcome::Scan { tuples: 2 });
        h.record_complete(1, 9, Outcome::Scan { tuples: 99 });
        assert_eq!(h.op(1).unwrap().outcome, Some(Outcome::Scan { tuples: 2 }));
    }

    #[test]
    fn from_ops_round_trips() {
        let mut rec = Recorder::new();
        rec.invoke(1, 1, 0, OpDesc::Put { key: "a".into(), tag: None });
        rec.complete(1, 4, Outcome::Write { version: Version(1) });
        let h = rec.finish();
        let rebuilt = History::from_ops(h.ops().to_vec());
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.op(1).unwrap().invoked, 0);
    }
}
