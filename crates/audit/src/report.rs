//! The aggregate result of auditing one run.

use crate::check::Violation;
use std::fmt;

/// What the checker suite concluded about one recorded run. `PartialEq`
/// (and a deterministic `Debug`/`Display`) so a replay-determinism check
/// is a single assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditReport {
    /// Operations recorded (invocations).
    pub ops: u64,
    /// Operations never resolved by the end of the run.
    pub unresolved: u64,
    /// Distinct client sessions observed.
    pub sessions: u64,
    /// Replica observations in the convergence snapshot.
    pub replicas: u64,
    /// Every violation found, in checker order (safety and warnings).
    pub violations: Vec<Violation>,
}

impl AuditReport {
    /// Violations that break a safety guarantee.
    pub fn safety_violations(&self) -> impl Iterator<Item = &Violation> + '_ {
        self.violations.iter().filter(|v| v.is_safety())
    }

    /// Number of safety violations.
    #[must_use]
    pub fn safety_count(&self) -> usize {
        self.safety_violations().count()
    }

    /// Number of non-safety warnings (e.g. durability loss under
    /// permanent churn).
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.violations.len() - self.safety_count()
    }

    /// Whether the run upheld every safety guarantee.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.safety_count() == 0
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audited {} ops ({} unresolved) across {} sessions, {} replica observations: \
             {} safety violation(s), {} warning(s)",
            self.ops,
            self.unresolved,
            self.sessions,
            self.replicas,
            self.safety_count(),
            self.warning_count()
        )?;
        for v in &self.violations {
            write!(f, "\n  [{}] {v:?}", v.kind())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_dht::Version;

    #[test]
    fn counts_split_safety_from_warnings() {
        let report = AuditReport {
            ops: 10,
            unresolved: 1,
            sessions: 2,
            replicas: 4,
            violations: vec![
                Violation::LostWrite { key: "k".into(), acked: Version(2), converged: None },
                Violation::Fabrication { key: "k".into(), version: Version(9), writes: 1 },
            ],
        };
        assert_eq!(report.safety_count(), 1);
        assert_eq!(report.warning_count(), 1);
        assert!(!report.is_clean());
        let text = report.to_string();
        assert!(text.contains("1 safety violation(s)"));
        assert!(text.contains("[fabrication]"));
    }
}
