//! # dd-audit — history capture and consistency checking
//!
//! The paper's claims are *dependability* claims: the epidemic soft/persist
//! design keeps its guarantees under churn, crashes and partitions. The
//! scenario plane can inject all of those faults — this crate is the
//! subsystem that machine-checks what the store promised while they raged.
//!
//! It has three parts:
//!
//! * **Capture** — a [`Recorder`] accumulates every client operation as an
//!   invocation/completion pair (op kind, keys/tag, returned versions,
//!   issuing session and workload phase, virtual-time interval) into an
//!   append-only [`History`]. Recording is passive: it never touches the
//!   simulation's RNG or message flow, so an audited run replays
//!   byte-identically to an unaudited one.
//! * **Checking** — [`check()`] (or the per-guarantee `check_*` functions)
//!   walks a [`History`] plus a post-settle [`ReplicaTuple`] snapshot and
//!   emits structured [`Violation`]s, each carrying the minimal witnessing
//!   sub-history.
//! * **Shared bookkeeping** — [`VersionOracle`], the per-key
//!   latest-acknowledged-version table used both by the scenario plane's
//!   staleness attribution and by the convergence checker.
//!
//! The checkers are *sound* for the DataDroplets protocols: on a fault-free
//! run every violation is a real bug, and under injected faults only the
//! anomalies the design actually rules out are flagged (availability loss —
//! timeouts, absent reads, partial feeds — is reported by the scenario
//! plane, not here). See [`check()`] for the exact guarantees audited.
//!
//! ```
//! use dd_audit::{History, Op, OpDesc, Outcome, Recorder};
//! use dd_dht::Version;
//!
//! let mut rec = Recorder::new();
//! rec.set_phase(Some(0));
//! rec.invoke(1, 7, 100, OpDesc::Put { key: "k".into(), tag: None });
//! rec.complete(1, 140, Outcome::Write { version: Version(1) });
//! let history: History = rec.finish();
//! assert_eq!(history.ops().len(), 1);
//! let report = dd_audit::check(&history, &[]);
//! assert!(report.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod history;
pub mod oracle;
pub mod report;

pub use check::{
    check, check_atomic_visibility, check_convergence, check_monotonic_reads,
    check_read_your_writes, check_tombstone_safety, snapshot_converged, ReplicaTuple, Violation,
    ViolationKind,
};
pub use history::{History, Op, OpDesc, OpFailure, Outcome, Recorder};
pub use oracle::VersionOracle;
pub use report::AuditReport;
