//! The checker suite: Jepsen-style guarantees over a recorded history.
//!
//! Every checker is *sound* for the DataDroplets protocols: it flags only
//! behaviour the design rules out even under faults. Availability loss —
//! timeouts, absent reads, feeds cut short by the multi-op deadline — is
//! the scenario plane's business; the checkers audit **safety**:
//!
//! * [`check_read_your_writes`] — a session's read must not return a
//!   version older than a write the *same session* had already harvested
//!   an ack for (single-key reads are served by the key's deterministic
//!   coordinator, whose version knowledge is monotonic).
//! * [`check_monotonic_reads`] — a session's non-overlapping reads of one
//!   key must observe non-decreasing versions.
//! * [`check_tombstone_safety`] — no deleted value resurrects: a read
//!   after a harvested delete ack must not return an older version, and a
//!   key that verifiably vanished from a feed (shown, then absent from a
//!   *complete* replica union) must not reappear at an old version.
//! * [`check_atomic_visibility`] — multi-op visibility never tears: a
//!   complete tag read never regresses a key below a previously shown
//!   version, and a fully-acknowledged batch that was once fully visible
//!   never becomes partially visible (absent deletes/retags).
//! * [`check_convergence`] — after settling, all live replicas of a key
//!   agree, and the agreed version is one some write actually produced.
//!
//! Reads gathered through *partial* replica unions (a dead slot-owner at
//! the multi-op deadline) are skipped: the client was told the union was
//! cut short, so missing items there are availability, not safety.

use crate::history::{History, Op, OpDesc, Outcome};
use crate::oracle::VersionOracle;
use crate::report::AuditReport;
use dd_dht::Version;
use dd_sim::rng::stable_hash;
use std::collections::{BTreeMap, HashMap, HashSet};

/// One live replica's view of one key in the post-settle snapshot the
/// convergence checker consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaTuple {
    /// Persist-node id holding the tuple.
    pub node: u64,
    /// Hash of the key held.
    pub key_hash: u64,
    /// Version held.
    pub version: Version,
    /// Whether the replica holds a tombstone.
    pub deleted: bool,
}

/// A checked guarantee that did not hold, with the minimal witnessing
/// sub-history (the ops whose recorded values prove the violation).
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// A session read an older version of a key than a write it had
    /// already harvested an ack for.
    ReadYourWrites {
        /// Offending session.
        session: u64,
        /// Key read.
        key: String,
        /// Version the session had seen acknowledged before the read.
        acked: Version,
        /// Older version the read returned.
        read: Version,
        /// `[the acked write, the stale read]`.
        witness: Vec<Op>,
    },
    /// A session's later read observed an older version than an earlier,
    /// non-overlapping read of the same key.
    MonotonicRead {
        /// Offending session.
        session: u64,
        /// Key read.
        key: String,
        /// Version the earlier read observed.
        earlier: Version,
        /// Older version the later read observed.
        later: Version,
        /// `[the earlier read, the later read]`.
        witness: Vec<Op>,
    },
    /// A deleted value resurrected: a read returned a version older than
    /// an already-acknowledged delete, or a key reappeared at an old
    /// version after verifiably vanishing from a complete feed union.
    TombstoneResurrection {
        /// Key that resurrected.
        key: String,
        /// The superseding version (the delete's, or the version the key
        /// was last shown at before vanishing).
        superseded_by: Version,
        /// The old version that came back.
        read: Version,
        /// The ops proving supersession, then the resurrecting read.
        witness: Vec<Op>,
    },
    /// A complete tag read returned a key at a version older than one a
    /// previously completed tag read had already shown.
    FeedRegression {
        /// Tag whose feed regressed.
        tag: String,
        /// Key that regressed.
        key: String,
        /// Version previously shown.
        earlier: Version,
        /// Older version shown later.
        later: Version,
        /// `[the earlier read, the later read]`.
        witness: Vec<Op>,
    },
    /// A fully-acknowledged batch that was once fully visible became
    /// partially visible again (with no delete or retag explaining it).
    TornBatch {
        /// The batch's tag.
        tag: String,
        /// Request id of the batched write.
        batch_req: u64,
        /// Batch keys missing from the later read.
        missing: Vec<String>,
        /// `[the batch write, the fully-visible read, the torn read]`.
        witness: Vec<Op>,
    },
    /// Live replicas of a key disagree after settling: some replica still
    /// holds a *live* tuple older than the key's newest version. (Old
    /// *tombstones* are acceptable residue — every node keeps tombstones
    /// regardless of its sieve, so a node whose sieve rejects the key's
    /// live tuples retains the last tombstone it saw forever.)
    Divergence {
        /// Key (as written by clients).
        key: String,
        /// `(node, version, deleted)` per live replica, node-ordered.
        replicas: Vec<(u64, Version, bool)>,
    },
    /// Replicas agree on a version no recorded write could have produced.
    Fabrication {
        /// Key affected.
        key: String,
        /// The impossible version.
        version: Version,
        /// Write invocations recorded for the key.
        writes: u64,
    },
    /// An acknowledged write is no longer reflected by any live replica
    /// (durability loss — reported, but not a *safety* violation: under
    /// permanent churn the paper's design trades a bounded amount of it).
    LostWrite {
        /// Key affected.
        key: String,
        /// Highest version acknowledged to some client.
        acked: Version,
        /// Version the live replicas converged on (`None`: key absent).
        converged: Option<Version>,
    },
}

/// The stable discriminant of a [`Violation`], independent of its witness
/// payload. Tooling that must decide "is this the *same bug*?" — the
/// dd-fuzz shrinker foremost — compares kinds, never full witness
/// histories, so a shrink step that changes keys, versions or witnesses
/// while preserving the anomaly class still counts as the same finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ViolationKind {
    /// [`Violation::ReadYourWrites`].
    ReadYourWrites,
    /// [`Violation::MonotonicRead`].
    MonotonicRead,
    /// [`Violation::TombstoneResurrection`].
    TombstoneResurrection,
    /// [`Violation::FeedRegression`].
    FeedRegression,
    /// [`Violation::TornBatch`].
    TornBatch,
    /// [`Violation::Divergence`].
    Divergence,
    /// [`Violation::Fabrication`].
    Fabrication,
    /// [`Violation::LostWrite`].
    LostWrite,
}

impl ViolationKind {
    /// Every kind, in checker order (useful for census tables).
    pub const ALL: [ViolationKind; 8] = [
        ViolationKind::ReadYourWrites,
        ViolationKind::MonotonicRead,
        ViolationKind::TombstoneResurrection,
        ViolationKind::FeedRegression,
        ViolationKind::TornBatch,
        ViolationKind::Divergence,
        ViolationKind::Fabrication,
        ViolationKind::LostWrite,
    ];

    /// The checker-friendly label of this kind (stable: recorded in
    /// BENCH artifacts and regression-test names).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::ReadYourWrites => "read-your-writes",
            ViolationKind::MonotonicRead => "monotonic-read",
            ViolationKind::TombstoneResurrection => "tombstone-resurrection",
            ViolationKind::FeedRegression => "feed-regression",
            ViolationKind::TornBatch => "torn-batch",
            ViolationKind::Divergence => "divergence",
            ViolationKind::Fabrication => "fabrication",
            ViolationKind::LostWrite => "lost-write",
        }
    }

    /// Whether violations of this kind break a safety guarantee (every
    /// kind but [`ViolationKind::LostWrite`], a durability warning).
    #[must_use]
    pub fn is_safety(self) -> bool {
        !matches!(self, ViolationKind::LostWrite)
    }
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl Violation {
    /// Whether this violation breaks a safety guarantee (every kind but
    /// [`Violation::LostWrite`], which is a durability warning).
    #[must_use]
    pub fn is_safety(&self) -> bool {
        self.kind().is_safety()
    }

    /// The stable discriminant of this violation, payload-independent.
    #[must_use]
    pub fn kind(&self) -> ViolationKind {
        match self {
            Violation::ReadYourWrites { .. } => ViolationKind::ReadYourWrites,
            Violation::MonotonicRead { .. } => ViolationKind::MonotonicRead,
            Violation::TombstoneResurrection { .. } => ViolationKind::TombstoneResurrection,
            Violation::FeedRegression { .. } => ViolationKind::FeedRegression,
            Violation::TornBatch { .. } => ViolationKind::TornBatch,
            Violation::Divergence { .. } => ViolationKind::Divergence,
            Violation::Fabrication { .. } => ViolationKind::Fabrication,
            Violation::LostWrite { .. } => ViolationKind::LostWrite,
        }
    }
}

/// Whether one key's replica rows `(node, version, deleted)` have
/// converged: nothing *live* below the key's newest version (older
/// tombstones are legitimate sieve residue), and the newest version's
/// holders agree on its tombstone flag.
fn rows_converged(rows: &[(u64, Version, bool)]) -> bool {
    let Some(max) = rows.iter().map(|&(_, v, _)| v).max() else {
        return true;
    };
    let mut max_flag: Option<bool> = None;
    rows.iter().all(
        |&(_, v, deleted)| {
            if v < max {
                deleted
            } else {
                *max_flag.get_or_insert(deleted) == deleted
            }
        },
    )
}

/// Whether every key in a replica snapshot has converged (the settle-loop
/// stopping criterion of audited runs — the same predicate, key by key,
/// that [`check_convergence`] turns into [`Violation::Divergence`]s).
#[must_use]
pub fn snapshot_converged(snapshot: &[ReplicaTuple]) -> bool {
    let mut by_key: HashMap<u64, Vec<(u64, Version, bool)>> = HashMap::new();
    for t in snapshot {
        by_key.entry(t.key_hash).or_default().push((t.node, t.version, t.deleted));
    }
    by_key.values().all(|rows| rows_converged(rows))
}

/// The versions a session saw acknowledged, per key: `(completion time,
/// version, op index)` per harvested write ack.
type AckIndex = BTreeMap<(u64, String), Vec<(u64, Version, usize)>>;

/// The *complete* tag reads of a history, per tag: `(op index, items)`.
type TagReads<'a> = BTreeMap<String, Vec<(usize, &'a [(String, Version)])>>;

/// Indexes every harvested write ack (puts, deletes, ordered batch items)
/// by `(session, key)`.
fn session_acks(history: &History) -> AckIndex {
    let mut acks: AckIndex = BTreeMap::new();
    for (i, op) in history.ops().iter().enumerate() {
        let Some(done) = op.completed else { continue };
        match (&op.desc, op.outcome.as_ref()) {
            (
                OpDesc::Put { key, .. } | OpDesc::Delete { key },
                Some(Outcome::Write { version }),
            ) => {
                acks.entry((op.session, key.clone())).or_default().push((done, *version, i));
            }
            (OpDesc::MultiPut { keys, .. }, Some(Outcome::MultiPut { versions, .. })) => {
                for (key, version) in crate::history::resolve_batch_acks(keys, versions) {
                    acks.entry((op.session, key.to_owned())).or_default().push((done, version, i));
                }
            }
            _ => {}
        }
    }
    acks
}

/// The resolved single-key reads of a history: `(op index, key, version
/// returned)` for every `Get` that found a tuple.
fn found_reads(history: &History) -> Vec<(usize, &str, Version)> {
    history
        .ops()
        .iter()
        .enumerate()
        .filter_map(|(i, op)| match (&op.desc, op.outcome.as_ref()) {
            (OpDesc::Get { key }, Some(Outcome::Read { version: Some(v) })) => {
                Some((i, key.as_str(), *v))
            }
            _ => None,
        })
        .collect()
}

/// Per-session read-your-writes: a read must not return a version older
/// than a write whose ack the same session had already harvested when the
/// read was submitted.
#[must_use]
pub fn check_read_your_writes(history: &History) -> Vec<Violation> {
    let acks = session_acks(history);
    let mut out = Vec::new();
    for (i, key, read) in found_reads(history) {
        let op = &history.ops()[i];
        let Some(entries) = acks.get(&(op.session, key.to_owned())) else { continue };
        // The strongest ack the session held when it submitted the read.
        let best =
            entries.iter().filter(|&&(done, _, _)| done <= op.invoked).max_by_key(|&&(_, v, _)| v);
        if let Some(&(_, acked, ack_idx)) = best {
            if read < acked {
                out.push(Violation::ReadYourWrites {
                    session: op.session,
                    key: key.to_owned(),
                    acked,
                    read,
                    witness: vec![history.ops()[ack_idx].clone(), op.clone()],
                });
            }
        }
    }
    out
}

/// Per-session monotonic reads: non-overlapping reads of one key must
/// observe non-decreasing versions. (Overlapping — pipelined — reads are
/// unordered and exempt.)
#[must_use]
pub fn check_monotonic_reads(history: &History) -> Vec<Violation> {
    // (session, key) -> reads seen so far: (completed, version, op index).
    let mut seen: AckIndex = BTreeMap::new();
    let mut out = Vec::new();
    for (i, key, version) in found_reads(history) {
        let op = &history.ops()[i];
        let slot = seen.entry((op.session, key.to_owned())).or_default();
        let prior = slot
            .iter()
            .filter(|&&(done, _, _)| done <= op.invoked)
            .max_by_key(|&&(_, v, _)| v)
            .copied();
        if let Some((_, earlier, prior_idx)) = prior {
            if version < earlier {
                out.push(Violation::MonotonicRead {
                    session: op.session,
                    key: key.to_owned(),
                    earlier,
                    later: version,
                    witness: vec![history.ops()[prior_idx].clone(), op.clone()],
                });
            }
        }
        slot.push((op.completed.expect("found read is resolved"), version, i));
    }
    out
}

/// The *complete* tag reads of a history, per tag, in completion order:
/// `(op index, items)` — partial unions are excluded by construction.
fn complete_multi_gets(history: &History) -> TagReads<'_> {
    let mut per_tag: TagReads<'_> = BTreeMap::new();
    let mut order: Vec<(u64, u64, usize)> = Vec::new();
    for (i, op) in history.ops().iter().enumerate() {
        if let (OpDesc::MultiGet { .. }, Some(Outcome::MultiGet { complete: true, .. })) =
            (&op.desc, op.outcome.as_ref())
        {
            order.push((op.completed.expect("resolved"), op.req, i));
        }
    }
    order.sort_unstable();
    for (_, _, i) in order {
        let op = &history.ops()[i];
        if let (OpDesc::MultiGet { tag }, Some(Outcome::MultiGet { items, .. })) =
            (&op.desc, op.outcome.as_ref())
        {
            per_tag.entry(tag.clone()).or_default().push((i, items.as_slice()));
        }
    }
    per_tag
}

/// Tombstone safety: no deleted value resurrects.
///
/// Two witnesses are audited: a single-key read returning a version older
/// than a delete whose ack had already been harvested when the read was
/// submitted; and a key reappearing in a complete feed union at a version
/// not newer than the one it was last shown at before verifiably
/// vanishing (a vanish from a complete union proves a replica holds a
/// newer tombstone, and tombstones are permanent).
#[must_use]
pub fn check_tombstone_safety(history: &History) -> Vec<Violation> {
    let mut out = Vec::new();
    // Delete acks per key: (completed, version, op index).
    let mut deletes: BTreeMap<&str, Vec<(u64, Version, usize)>> = BTreeMap::new();
    for (i, op) in history.ops().iter().enumerate() {
        if let (OpDesc::Delete { key }, Some(Outcome::Write { version })) =
            (&op.desc, op.outcome.as_ref())
        {
            deletes.entry(key).or_default().push((op.completed.expect("resolved"), *version, i));
        }
    }
    for (i, key, read) in found_reads(history) {
        let op = &history.ops()[i];
        let Some(entries) = deletes.get(key) else { continue };
        let best =
            entries.iter().filter(|&&(done, _, _)| done <= op.invoked).max_by_key(|&&(_, v, _)| v);
        if let Some(&(_, tombstone, del_idx)) = best {
            if read < tombstone {
                out.push(Violation::TombstoneResurrection {
                    key: key.to_owned(),
                    superseded_by: tombstone,
                    read,
                    witness: vec![history.ops()[del_idx].clone(), op.clone()],
                });
            }
        }
    }
    // Shown → vanished → shown-again-at-or-below-the-old-version, over
    // complete unions of one tag's fixed replica set.
    for gets in complete_multi_gets(history).values() {
        // key -> the strongest shown observation, and the vanish proof.
        let mut last_shown: HashMap<&str, (Version, u64, usize)> = HashMap::new();
        let mut vanished: HashMap<&str, (Version, u64, usize, usize)> = HashMap::new();
        for &(gi, items) in gets {
            let g = &history.ops()[gi];
            let present: HashMap<&str, Version> =
                items.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            for (&key, &(v_shown, shown_done, shown_idx)) in &last_shown {
                if !present.contains_key(key) && g.invoked >= shown_done {
                    let slot = vanished.entry(key).or_insert((
                        v_shown,
                        g.completed.expect("resolved"),
                        shown_idx,
                        gi,
                    ));
                    if v_shown > slot.0 {
                        *slot = (v_shown, g.completed.expect("resolved"), shown_idx, gi);
                    }
                }
            }
            for (key, &v) in items.iter().map(|(k, v)| (k.as_str(), v)) {
                if let Some(&(v_old, vanish_done, shown_idx, vanish_idx)) = vanished.get(key) {
                    if g.invoked >= vanish_done && v <= v_old {
                        out.push(Violation::TombstoneResurrection {
                            key: (*key).to_owned(),
                            superseded_by: v_old,
                            read: v,
                            witness: vec![
                                history.ops()[shown_idx].clone(),
                                history.ops()[vanish_idx].clone(),
                                g.clone(),
                            ],
                        });
                    }
                }
                let done = g.completed.expect("resolved");
                let slot = last_shown.entry(key).or_insert((v, done, gi));
                if v >= slot.0 {
                    *slot = (v, done, gi);
                }
            }
        }
    }
    dedup_in_order(out)
}

/// Multi-op atomicity of visibility over complete tag reads: per-key
/// version regressions across non-overlapping reads, and fully-acked
/// batches tearing after having been fully visible.
#[must_use]
pub fn check_atomic_visibility(history: &History) -> Vec<Violation> {
    let mut out = Vec::new();
    let per_tag = complete_multi_gets(history);
    // Keys exempt from the torn-batch rule: a delete or a write under a
    // different tag legitimately removes a key from a feed.
    let mut deleted_keys: HashSet<&str> = HashSet::new();
    let mut tagged_writes: Vec<(&str, Option<&str>)> = Vec::new();
    for op in history.ops() {
        match &op.desc {
            OpDesc::Delete { key } => {
                deleted_keys.insert(key);
            }
            OpDesc::Put { key, tag } => tagged_writes.push((key, tag.as_deref())),
            OpDesc::MultiPut { keys, tag } => {
                for k in keys {
                    tagged_writes.push((k, tag.as_deref()));
                }
            }
            _ => {}
        }
    }
    let retagged =
        |key: &str, tag: &str| tagged_writes.iter().any(|&(k, t)| k == key && t != Some(tag));

    for (tag, gets) in &per_tag {
        // (a) per-key version regression across non-overlapping reads.
        let mut strongest: HashMap<&str, (Version, u64, usize)> = HashMap::new();
        for &(gi, items) in gets {
            let g = &history.ops()[gi];
            for (key, &v) in items.iter().map(|(k, v)| (k.as_str(), v)) {
                if let Some(&(v_max, done, prev_idx)) = strongest.get(key) {
                    if v < v_max && g.invoked >= done {
                        out.push(Violation::FeedRegression {
                            tag: tag.clone(),
                            key: key.to_owned(),
                            earlier: v_max,
                            later: v,
                            witness: vec![history.ops()[prev_idx].clone(), g.clone()],
                        });
                    }
                }
                let done = g.completed.expect("resolved");
                let slot = strongest.entry(key).or_insert((v, done, gi));
                if v >= slot.0 {
                    *slot = (v, done, gi);
                }
            }
        }
        // (b) torn batches: fully-acked batch, once fully visible, must
        // not become partially visible (absent deletes/retags).
        for (bi, batch) in history.ops().iter().enumerate() {
            let (
                OpDesc::MultiPut { keys, tag: Some(btag) },
                Some(Outcome::MultiPut { versions, want }),
            ) = (&batch.desc, batch.outcome.as_ref())
            else {
                continue;
            };
            if btag != tag || versions.len() != *want as usize {
                continue;
            }
            let mut fully_visible: Option<(u64, usize)> = None;
            for &(gi, items) in gets {
                let g = &history.ops()[gi];
                let present: HashSet<&str> = items.iter().map(|(k, _)| k.as_str()).collect();
                let shown: Vec<&String> =
                    keys.iter().filter(|k| present.contains(k.as_str())).collect();
                if shown.len() == keys.len() {
                    fully_visible = Some((g.completed.expect("resolved"), gi));
                    continue;
                }
                if let Some((full_done, full_idx)) = fully_visible {
                    let missing: Vec<String> = keys
                        .iter()
                        .filter(|k| {
                            !present.contains(k.as_str())
                                && !deleted_keys.contains(k.as_str())
                                && !retagged(k, tag)
                        })
                        .cloned()
                        .collect();
                    if !shown.is_empty() && !missing.is_empty() && g.invoked >= full_done {
                        out.push(Violation::TornBatch {
                            tag: tag.clone(),
                            batch_req: batch.req,
                            missing,
                            witness: vec![
                                history.ops()[bi].clone(),
                                history.ops()[full_idx].clone(),
                                g.clone(),
                            ],
                        });
                    }
                }
            }
        }
    }
    dedup_in_order(out)
}

/// Eventual convergence over the post-settle snapshot: all live replicas
/// of each audited key agree, the agreed version is producible from the
/// recorded writes, and acknowledged writes survive (the last as a
/// non-safety [`Violation::LostWrite`] warning).
///
/// Only keys the history wrote are audited: auditing assumes the
/// scenario's writes are the cluster's only writes.
#[must_use]
pub fn check_convergence(history: &History, snapshot: &[ReplicaTuple]) -> Vec<Violation> {
    let mut out = Vec::new();
    // key_hash -> key string, and write-invocation counts per key.
    let mut names: HashMap<u64, &str> = HashMap::new();
    let mut writes: BTreeMap<&str, u64> = BTreeMap::new();
    for op in history.ops() {
        match &op.desc {
            OpDesc::Put { key, .. } | OpDesc::Delete { key } => {
                names.insert(stable_hash(key.as_bytes()), key);
                *writes.entry(key).or_insert(0) += 1;
            }
            OpDesc::MultiPut { keys, .. } => {
                for key in keys {
                    names.insert(stable_hash(key.as_bytes()), key);
                    *writes.entry(key).or_insert(0) += 1;
                }
            }
            _ => {}
        }
    }
    let mut by_key: BTreeMap<&str, Vec<&ReplicaTuple>> = BTreeMap::new();
    for t in snapshot {
        if let Some(&name) = names.get(&t.key_hash) {
            by_key.entry(name).or_default().push(t);
        }
    }
    let oracle = VersionOracle::from_history(history);
    for (key, replicas) in &by_key {
        let mut rows: Vec<(u64, Version, bool)> =
            replicas.iter().map(|t| (t.node, t.version, t.deleted)).collect();
        rows.sort_unstable();
        let agreed = rows.iter().map(|&(_, v, _)| v).max().expect("non-empty group");
        if !rows_converged(&rows) {
            out.push(Violation::Divergence { key: (*key).to_owned(), replicas: rows });
            continue;
        }
        let invoked_writes = writes.get(key).copied().unwrap_or(0);
        if agreed.0 > invoked_writes {
            out.push(Violation::Fabrication {
                key: (*key).to_owned(),
                version: agreed,
                writes: invoked_writes,
            });
        } else if agreed < oracle.latest(key) {
            out.push(Violation::LostWrite {
                key: (*key).to_owned(),
                acked: oracle.latest(key),
                converged: Some(agreed),
            });
        }
    }
    // Acked keys with no live replica at all: the write is gone.
    for (key, acked) in oracle.iter() {
        if !by_key.contains_key(key) {
            out.push(Violation::LostWrite { key: key.to_owned(), acked, converged: None });
        }
    }
    out
}

/// Collapses duplicate violations while keeping first-seen order (the
/// sweep-style checkers can witness one anomaly from several reads).
fn dedup_in_order(violations: Vec<Violation>) -> Vec<Violation> {
    let mut out: Vec<Violation> = Vec::with_capacity(violations.len());
    for v in violations {
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// Runs the full checker suite over a history and a post-settle replica
/// snapshot, returning the aggregate [`AuditReport`].
#[must_use]
pub fn check(history: &History, snapshot: &[ReplicaTuple]) -> AuditReport {
    let mut violations = Vec::new();
    violations.extend(check_read_your_writes(history));
    violations.extend(check_monotonic_reads(history));
    violations.extend(check_tombstone_safety(history));
    violations.extend(check_atomic_visibility(history));
    violations.extend(check_convergence(history, snapshot));
    let sessions: HashSet<u64> = history.ops().iter().map(|o| o.session).collect();
    AuditReport {
        ops: history.len() as u64,
        unresolved: history.ops().iter().filter(|o| !o.is_resolved()).count() as u64,
        sessions: sessions.len() as u64,
        replicas: snapshot.len() as u64,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::Recorder;

    fn put(rec: &mut Recorder, req: u64, session: u64, at: u64, key: &str, v: u64) {
        rec.invoke(req, session, at, OpDesc::Put { key: key.into(), tag: None });
        rec.complete(req, at + 10, Outcome::Write { version: Version(v) });
    }

    fn get(rec: &mut Recorder, req: u64, session: u64, at: u64, key: &str, v: Option<u64>) {
        rec.invoke(req, session, at, OpDesc::Get { key: key.into() });
        rec.complete(req, at + 10, Outcome::Read { version: v.map(Version) });
    }

    #[test]
    fn clean_history_checks_clean() {
        let mut rec = Recorder::new();
        put(&mut rec, 1, 1, 0, "k", 1);
        get(&mut rec, 2, 1, 20, "k", Some(1));
        get(&mut rec, 3, 2, 30, "other", None);
        let h = rec.finish();
        let kh = stable_hash(b"k");
        let snap = [
            ReplicaTuple { node: 10, key_hash: kh, version: Version(1), deleted: false },
            ReplicaTuple { node: 11, key_hash: kh, version: Version(1), deleted: false },
        ];
        let report = check(&h, &snap);
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.ops, 3);
        assert_eq!(report.sessions, 2);
    }

    #[test]
    fn overlapping_reads_are_exempt_from_monotonicity() {
        let mut rec = Recorder::new();
        put(&mut rec, 1, 1, 0, "k", 1);
        put(&mut rec, 2, 1, 20, "k", 2);
        // Two pipelined reads, both in flight at once: the later-completing
        // one may legally return the older version.
        rec.invoke(3, 1, 40, OpDesc::Get { key: "k".into() });
        rec.invoke(4, 1, 41, OpDesc::Get { key: "k".into() });
        rec.complete(3, 50, Outcome::Read { version: Some(Version(2)) });
        rec.complete(4, 55, Outcome::Read { version: Some(Version(2)) });
        let h = rec.finish();
        assert!(check_monotonic_reads(&h).is_empty());
    }

    #[test]
    fn stale_read_after_own_ack_is_ryw() {
        let mut rec = Recorder::new();
        put(&mut rec, 1, 1, 0, "k", 3);
        get(&mut rec, 2, 1, 50, "k", Some(2));
        let v = check_read_your_writes(&rec.finish());
        assert_eq!(v.len(), 1);
        assert!(matches!(
            &v[0],
            Violation::ReadYourWrites { session: 1, acked: Version(3), read: Version(2), witness, .. }
                if witness.len() == 2
        ));
        assert!(v[0].is_safety());
    }

    #[test]
    fn another_sessions_ack_is_not_ryw() {
        let mut rec = Recorder::new();
        put(&mut rec, 1, 1, 0, "k", 3);
        get(&mut rec, 2, 2, 50, "k", Some(2));
        assert!(check_read_your_writes(&rec.finish()).is_empty());
    }

    #[test]
    fn convergence_flags_divergence_and_fabrication() {
        let mut rec = Recorder::new();
        put(&mut rec, 1, 1, 0, "k", 1);
        let h = rec.finish();
        let kh = stable_hash(b"k");
        let split = [
            ReplicaTuple { node: 1, key_hash: kh, version: Version(1), deleted: false },
            ReplicaTuple { node: 2, key_hash: kh, version: Version(2), deleted: false },
        ];
        let v = check_convergence(&h, &split);
        assert!(matches!(&v[0], Violation::Divergence { replicas, .. } if replicas.len() == 2));
        // A version beyond what one recorded write could assign.
        let fab = [ReplicaTuple { node: 1, key_hash: kh, version: Version(9), deleted: false }];
        let v = check_convergence(&h, &fab);
        assert!(matches!(&v[0], Violation::Fabrication { version: Version(9), writes: 1, .. }));
        // Keys the history never wrote are out of audit scope.
        let alien = [ReplicaTuple { node: 1, key_hash: 42, version: Version(7), deleted: false }];
        let lost_only: Vec<_> =
            check_convergence(&h, &alien).into_iter().filter(Violation::is_safety).collect();
        assert!(lost_only.is_empty());
    }

    #[test]
    fn lost_acked_write_is_a_warning_not_safety() {
        let mut rec = Recorder::new();
        put(&mut rec, 1, 1, 0, "k", 2);
        let v = check_convergence(&rec.finish(), &[]);
        assert_eq!(v.len(), 1);
        assert!(matches!(&v[0], Violation::LostWrite { converged: None, .. }));
        assert!(!v[0].is_safety());
        assert_eq!(v[0].kind(), ViolationKind::LostWrite);
        assert_eq!(v[0].kind().label(), "lost-write");
    }

    #[test]
    fn kinds_are_stable_distinct_discriminants() {
        // Labels are pairwise distinct and stable (artifacts and
        // regression-test names are keyed on them).
        let labels: std::collections::HashSet<&str> =
            ViolationKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), ViolationKind::ALL.len());
        // Exactly one kind is a durability warning; the rest are safety.
        let warnings: Vec<ViolationKind> =
            ViolationKind::ALL.into_iter().filter(|k| !k.is_safety()).collect();
        assert_eq!(warnings, vec![ViolationKind::LostWrite]);
        // Display matches the label, and kinds compare independently of
        // the witness payload they came from.
        assert_eq!(ViolationKind::TornBatch.to_string(), "torn-batch");
        let a = Violation::Divergence { key: "a".into(), replicas: vec![] };
        let b = Violation::Divergence { key: "b".into(), replicas: vec![(1, Version(1), false)] };
        assert_ne!(a, b, "payloads differ");
        assert_eq!(a.kind(), b.kind(), "kinds agree regardless of payload");
    }
}
