//! Property-based tests for membership invariants.

use dd_membership::{CyclonConfig, CyclonState, PartialView, PeerSampler, ViewEntry};
use dd_sim::{Duration, NodeId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A partial view never exceeds capacity, never contains its owner and
    /// never holds duplicates, for any insertion sequence.
    #[test]
    fn view_invariants_under_arbitrary_inserts(
        capacity in 1usize..12,
        inserts in prop::collection::vec((0u64..32, 0u32..20), 0..200),
    ) {
        let owner = NodeId(7);
        let mut v = PartialView::new(owner, capacity);
        for (id, age) in inserts {
            v.insert(ViewEntry { node: NodeId(id), age });
            prop_assert!(v.len() <= capacity);
            prop_assert!(!v.contains(owner));
            let mut ids: Vec<NodeId> = v.nodes().collect();
            ids.sort();
            ids.dedup();
            prop_assert_eq!(ids.len(), v.len());
        }
    }

    /// A full shuffle round-trip between two nodes preserves the view
    /// invariants on both sides and teaches the responder the initiator.
    #[test]
    fn shuffle_round_trip_preserves_invariants(
        seed in any::<u64>(),
        a_boot in prop::collection::hash_set(2u64..40, 1..8),
        b_boot in prop::collection::hash_set(2u64..40, 1..8),
    ) {
        let cfg = CyclonConfig { view_size: 6, shuffle_len: 3, period: Duration(100) };
        let a_boot: Vec<NodeId> = a_boot.into_iter().map(NodeId).collect();
        let b_boot: Vec<NodeId> = b_boot.into_iter().map(NodeId).collect();
        let mut a = CyclonState::new(NodeId(0), cfg, &a_boot);
        let mut b = CyclonState::new(NodeId(1), cfg, &b_boot);
        let mut rng = SmallRng::seed_from_u64(seed);
        if let Some((_target, req)) = a.start_shuffle(&mut rng) {
            let reply = b.on_request(&mut rng, NodeId(0), req);
            a.on_reply(reply);
            prop_assert!(b.view().contains(NodeId(0)), "responder learned initiator");
        }
        for (state, owner) in [(&a, NodeId(0)), (&b, NodeId(1))] {
            prop_assert!(state.view().len() <= 6);
            prop_assert!(!state.view().contains(owner));
            let mut ids: Vec<NodeId> = state.view().nodes().collect();
            ids.sort();
            ids.dedup();
            prop_assert_eq!(ids.len(), state.view().len());
        }
    }

    /// Sampling from any view returns distinct, in-view peers.
    #[test]
    fn samples_are_subset_and_distinct(
        peers in prop::collection::hash_set(1u64..64, 1..20),
        k in 1usize..10,
        seed in any::<u64>(),
    ) {
        let boot: Vec<NodeId> = peers.iter().copied().map(NodeId).collect();
        let cfg = CyclonConfig { view_size: 20, shuffle_len: 5, period: Duration(100) };
        let s = CyclonState::new(NodeId(0), cfg, &boot);
        let mut rng = SmallRng::seed_from_u64(seed);
        let sample = s.sample_peers(&mut rng, k);
        prop_assert!(sample.len() <= k);
        let mut d = sample.clone();
        d.sort();
        d.dedup();
        prop_assert_eq!(d.len(), sample.len());
        for p in sample {
            prop_assert!(s.view().contains(p));
        }
    }
}
