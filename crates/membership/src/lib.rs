//! # dd-membership — peer sampling and membership
//!
//! The epidemic persistent-state layer of the paper (§III) requires every
//! node to "relay messages to *fanout* neighbors" without global membership
//! knowledge — the paper explicitly rules out "knowing all nodes to perform
//! some operations as in Cassandra" (§I). The standard building block is a
//! *peer-sampling service* maintaining a small partial view; we implement
//! the Cyclon shuffle (Voulgaris et al.), whose views are uniform random
//! samples of the population and self-heal under churn.
//!
//! Contents:
//! * [`PartialView`] — fixed-capacity aged view with the invariants the
//!   shuffle relies on (no self, no duplicates).
//! * [`CyclonState`] — the shuffle protocol as a sans-IO state machine, plus
//!   [`CyclonProcess`], its [`dd_sim::Process`] adapter.
//! * [`MembershipOracle`] — closed-world full membership, used both by
//!   experiments that isolate a protocol from membership effects and by the
//!   soft-state layer (which the paper says *is* moderately sized, §II).
//! * [`HeartbeatDetector`] — timeout-based failure detector for the
//!   DHT baseline's reactive repair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cyclon;
pub mod detector;
pub mod oracle;
pub mod sampler;
pub mod view;

pub use cyclon::{CyclonConfig, CyclonMsg, CyclonProcess, CyclonState};
pub use detector::HeartbeatDetector;
pub use oracle::{DensePopulation, MembershipOracle};
pub use sampler::PeerSampler;
pub use view::{PartialView, ViewEntry};
