//! Fixed-capacity partial views with entry ages.

use dd_sim::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;

/// One neighbour in a partial view: its id and the age (in shuffle rounds)
/// of the information we hold about it. Older entries are more likely to be
/// stale, so Cyclon preferentially shuffles them out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViewEntry {
    /// Neighbour id.
    pub node: NodeId,
    /// Rounds since this entry was created by its subject.
    pub age: u32,
}

impl ViewEntry {
    /// Fresh entry (age zero).
    #[must_use]
    pub fn fresh(node: NodeId) -> Self {
        ViewEntry { node, age: 0 }
    }
}

/// A bounded set of [`ViewEntry`] with the Cyclon invariants:
/// no duplicates, never contains the owner, never exceeds capacity.
#[derive(Debug, Clone)]
pub struct PartialView {
    owner: NodeId,
    capacity: usize,
    entries: Vec<ViewEntry>,
}

impl PartialView {
    /// Creates an empty view owned by `owner` holding at most `capacity`
    /// neighbours.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(owner: NodeId, capacity: usize) -> Self {
        assert!(capacity > 0, "view capacity must be positive");
        PartialView { owner, capacity, entries: Vec::with_capacity(capacity) }
    }

    /// The owning node (never present in the view).
    #[must_use]
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Maximum number of entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no neighbours are known.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, unordered.
    #[must_use]
    pub fn entries(&self) -> &[ViewEntry] {
        &self.entries
    }

    /// Neighbour ids, unordered.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|e| e.node)
    }

    /// Whether `node` is in the view.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.entries.iter().any(|e| e.node == node)
    }

    /// Inserts `entry`, preserving the invariants:
    /// * the owner and existing nodes are skipped (existing entries keep
    ///   the *lower* of the two ages — fresher information wins);
    /// * when full, the oldest entry is evicted iff it is older than the
    ///   candidate, otherwise the candidate is dropped.
    ///
    /// Returns `true` if the view changed.
    pub fn insert(&mut self, entry: ViewEntry) -> bool {
        if entry.node == self.owner {
            return false;
        }
        if let Some(e) = self.entries.iter_mut().find(|e| e.node == entry.node) {
            if entry.age < e.age {
                e.age = entry.age;
                return true;
            }
            return false;
        }
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
            return true;
        }
        if let Some(idx) = self.oldest_index() {
            if self.entries[idx].age > entry.age {
                self.entries[idx] = entry;
                return true;
            }
        }
        false
    }

    /// Removes `node`, returning its entry if present.
    pub fn remove(&mut self, node: NodeId) -> Option<ViewEntry> {
        let idx = self.entries.iter().position(|e| e.node == node)?;
        Some(self.entries.swap_remove(idx))
    }

    /// Increments every entry's age by one (start of a shuffle round).
    pub fn increment_ages(&mut self) {
        for e in &mut self.entries {
            e.age = e.age.saturating_add(1);
        }
    }

    /// Index of the oldest entry.
    fn oldest_index(&self) -> Option<usize> {
        self.entries.iter().enumerate().max_by_key(|(_, e)| e.age).map(|(i, _)| i)
    }

    /// Removes and returns the oldest entry (Cyclon's shuffle target).
    pub fn take_oldest(&mut self) -> Option<ViewEntry> {
        let idx = self.oldest_index()?;
        Some(self.entries.swap_remove(idx))
    }

    /// Uniformly samples up to `k` distinct entries.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<ViewEntry> {
        let mut picked: Vec<ViewEntry> = self.entries.clone();
        picked.shuffle(rng);
        picked.truncate(k);
        picked
    }

    /// Uniformly samples one neighbour id.
    pub fn sample_one<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        self.entries.choose(rng).map(|e| e.node)
    }

    /// Removes up to `k` random entries and returns them (used when
    /// composing the shuffle exchange set).
    pub fn take_random<R: Rng + ?Sized>(&mut self, rng: &mut R, k: usize) -> Vec<ViewEntry> {
        let mut out = Vec::new();
        for _ in 0..k {
            if self.entries.is_empty() {
                break;
            }
            let idx = rng.gen_range(0..self.entries.len());
            out.push(self.entries.swap_remove(idx));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn view() -> PartialView {
        PartialView::new(NodeId(0), 4)
    }

    #[test]
    fn insert_respects_capacity_and_self_exclusion() {
        let mut v = view();
        assert!(!v.insert(ViewEntry::fresh(NodeId(0))), "owner must be rejected");
        for i in 1..=4 {
            assert!(v.insert(ViewEntry::fresh(NodeId(i))));
        }
        assert_eq!(v.len(), 4);
        // Full of age-0 entries: an age-0 candidate is dropped.
        assert!(!v.insert(ViewEntry::fresh(NodeId(9))));
        assert!(!v.contains(NodeId(9)));
    }

    #[test]
    fn full_view_evicts_older_entry_for_younger_candidate() {
        let mut v = view();
        for i in 1..=4 {
            v.insert(ViewEntry { node: NodeId(i), age: 5 });
        }
        assert!(v.insert(ViewEntry::fresh(NodeId(9))));
        assert!(v.contains(NodeId(9)));
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn duplicate_insert_keeps_fresher_age() {
        let mut v = view();
        v.insert(ViewEntry { node: NodeId(1), age: 3 });
        assert!(v.insert(ViewEntry { node: NodeId(1), age: 1 }), "fresher age updates");
        assert_eq!(v.entries()[0].age, 1);
        assert!(!v.insert(ViewEntry { node: NodeId(1), age: 7 }), "staler age ignored");
        assert_eq!(v.entries()[0].age, 1);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn take_oldest_returns_max_age() {
        let mut v = view();
        v.insert(ViewEntry { node: NodeId(1), age: 2 });
        v.insert(ViewEntry { node: NodeId(2), age: 9 });
        v.insert(ViewEntry { node: NodeId(3), age: 4 });
        let oldest = v.take_oldest().unwrap();
        assert_eq!(oldest.node, NodeId(2));
        assert_eq!(v.len(), 2);
        assert!(!v.contains(NodeId(2)));
    }

    #[test]
    fn increment_ages_saturates() {
        let mut v = view();
        v.insert(ViewEntry { node: NodeId(1), age: u32::MAX });
        v.insert(ViewEntry { node: NodeId(2), age: 0 });
        v.increment_ages();
        let ages: Vec<u32> = v.entries().iter().map(|e| e.age).collect();
        assert!(ages.contains(&u32::MAX));
        assert!(ages.contains(&1));
    }

    #[test]
    fn sample_is_bounded_and_distinct() {
        let mut v = PartialView::new(NodeId(0), 8);
        for i in 1..=8 {
            v.insert(ViewEntry::fresh(NodeId(i)));
        }
        let mut rng = SmallRng::seed_from_u64(1);
        let s = v.sample(&mut rng, 5);
        assert_eq!(s.len(), 5);
        let mut ids: Vec<NodeId> = s.iter().map(|e| e.node).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 5, "sample must be distinct");
        assert_eq!(v.sample(&mut rng, 20).len(), 8, "k beyond len returns all");
    }

    #[test]
    fn take_random_removes_entries() {
        let mut v = PartialView::new(NodeId(0), 8);
        for i in 1..=6 {
            v.insert(ViewEntry::fresh(NodeId(i)));
        }
        let mut rng = SmallRng::seed_from_u64(2);
        let taken = v.take_random(&mut rng, 4);
        assert_eq!(taken.len(), 4);
        assert_eq!(v.len(), 2);
        for e in &taken {
            assert!(!v.contains(e.node));
        }
    }

    #[test]
    fn remove_returns_entry() {
        let mut v = view();
        v.insert(ViewEntry { node: NodeId(3), age: 2 });
        assert_eq!(v.remove(NodeId(3)).unwrap().age, 2);
        assert!(v.remove(NodeId(3)).is_none());
    }

    #[test]
    fn sample_one_on_empty_view_is_none() {
        let v = view();
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(v.sample_one(&mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = PartialView::new(NodeId(0), 0);
    }
}
