//! Heartbeat failure detection.
//!
//! The structured baseline (Cassandra-style, §I of the paper) must *detect*
//! failures to react to them — its repair cost is proportional to churn
//! precisely because detection triggers work. The epidemic layer, by
//! contrast, masks failures probabilistically. This detector drives the
//! baseline's reactive repair in experiment E11.

use dd_sim::{Duration, NodeId, Time};
use std::collections::HashMap;

/// Timeout-based failure detector: a peer is suspected when nothing has
/// been heard from it for `timeout` ticks.
#[derive(Debug, Clone)]
pub struct HeartbeatDetector {
    timeout: Duration,
    last_seen: HashMap<NodeId, Time>,
}

impl HeartbeatDetector {
    /// Creates a detector with the given suspicion timeout.
    #[must_use]
    pub fn new(timeout: Duration) -> Self {
        HeartbeatDetector { timeout, last_seen: HashMap::new() }
    }

    /// Records life evidence for `node` at `now` (any received message
    /// counts as a heartbeat).
    pub fn heard_from(&mut self, node: NodeId, now: Time) {
        let t = self.last_seen.entry(node).or_insert(now);
        *t = (*t).max(now);
    }

    /// Starts monitoring `node` as of `now` without evidence (e.g. on
    /// learning of it from membership).
    pub fn monitor(&mut self, node: NodeId, now: Time) {
        self.last_seen.entry(node).or_insert(now);
    }

    /// Stops monitoring `node`.
    pub fn forget(&mut self, node: NodeId) {
        self.last_seen.remove(&node);
    }

    /// Whether `node` is currently suspected at time `now`.
    #[must_use]
    pub fn is_suspect(&self, node: NodeId, now: Time) -> bool {
        self.last_seen.get(&node).is_some_and(|&seen| now.since(seen) > self.timeout)
    }

    /// All suspected nodes at time `now`, in id order.
    #[must_use]
    pub fn suspects(&self, now: Time) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .last_seen
            .iter()
            .filter(|(_, &seen)| now.since(seen) > self.timeout)
            .map(|(&n, _)| n)
            .collect();
        v.sort();
        v
    }

    /// Number of monitored peers.
    #[must_use]
    pub fn monitored(&self) -> usize {
        self.last_seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_node_is_not_suspect() {
        let mut d = HeartbeatDetector::new(Duration(100));
        d.heard_from(NodeId(1), Time(0));
        assert!(!d.is_suspect(NodeId(1), Time(100)));
        assert!(d.is_suspect(NodeId(1), Time(101)));
    }

    #[test]
    fn unknown_node_is_not_suspect() {
        let d = HeartbeatDetector::new(Duration(10));
        assert!(!d.is_suspect(NodeId(9), Time(1_000)));
    }

    #[test]
    fn heartbeat_refreshes_suspicion() {
        let mut d = HeartbeatDetector::new(Duration(50));
        d.heard_from(NodeId(1), Time(0));
        d.heard_from(NodeId(1), Time(80));
        assert!(!d.is_suspect(NodeId(1), Time(120)));
        assert!(d.is_suspect(NodeId(1), Time(131)));
    }

    #[test]
    fn stale_heartbeat_does_not_rewind_clock() {
        let mut d = HeartbeatDetector::new(Duration(50));
        d.heard_from(NodeId(1), Time(100));
        d.heard_from(NodeId(1), Time(40)); // reordered message
        assert!(!d.is_suspect(NodeId(1), Time(150)));
        assert!(d.is_suspect(NodeId(1), Time(151)));
    }

    #[test]
    fn suspects_lists_all_expired_in_order() {
        let mut d = HeartbeatDetector::new(Duration(10));
        d.heard_from(NodeId(3), Time(0));
        d.heard_from(NodeId(1), Time(0));
        d.heard_from(NodeId(2), Time(95));
        assert_eq!(d.suspects(Time(100)), vec![NodeId(1), NodeId(3)]);
    }

    #[test]
    fn forget_and_monitor_manage_the_set() {
        let mut d = HeartbeatDetector::new(Duration(10));
        d.monitor(NodeId(5), Time(0));
        assert_eq!(d.monitored(), 1);
        assert!(d.is_suspect(NodeId(5), Time(11)));
        d.forget(NodeId(5));
        assert_eq!(d.monitored(), 0);
        assert!(!d.is_suspect(NodeId(5), Time(11)));
    }

    #[test]
    fn monitor_does_not_override_existing_evidence() {
        let mut d = HeartbeatDetector::new(Duration(10));
        d.heard_from(NodeId(1), Time(100));
        d.monitor(NodeId(1), Time(0));
        assert!(!d.is_suspect(NodeId(1), Time(105)));
    }
}
