//! The Cyclon shuffle: an age-based peer-sampling protocol.
//!
//! Each round a node (1) ages its view, (2) removes its *oldest* neighbour,
//! (3) sends that neighbour a random subset of its view plus a fresh entry
//! for itself, (4) the neighbour replies with a subset of its own view, and
//! (5) both merge what they received, preferring received entries over the
//! ones they sent away. The resulting communication graph is close to a
//! random graph, which is exactly the topology the epidemic dissemination
//! analysis of the paper (§III-A) assumes.

use crate::sampler::PeerSampler;
use crate::view::{PartialView, ViewEntry};
use dd_sim::{Ctx, Duration, NodeId, Process, TimerTag};
use rand::Rng;

/// Timer tag used by [`CyclonProcess`].
pub const SHUFFLE_TIMER: TimerTag = TimerTag(0xC1C1);

/// Protocol parameters.
#[derive(Debug, Clone, Copy)]
pub struct CyclonConfig {
    /// View capacity (`c` in the Cyclon paper). 20 suits 10⁴–10⁵ nodes.
    pub view_size: usize,
    /// Entries exchanged per shuffle (`l`), must be ≤ `view_size`.
    pub shuffle_len: usize,
    /// Ticks between shuffles.
    pub period: Duration,
}

impl Default for CyclonConfig {
    fn default() -> Self {
        CyclonConfig { view_size: 20, shuffle_len: 8, period: Duration(1_000) }
    }
}

/// Messages of the shuffle protocol.
#[derive(Debug, Clone)]
pub enum CyclonMsg {
    /// Shuffle request carrying the initiator's exchange set.
    Request(Vec<ViewEntry>),
    /// Shuffle reply carrying the responder's exchange set.
    Reply(Vec<ViewEntry>),
}

/// Sans-IO Cyclon state machine.
///
/// All methods are pure state transitions returning the messages to send;
/// binding to a transport is the adapter's job ([`CyclonProcess`] for
/// `dd-sim`).
#[derive(Debug, Clone)]
pub struct CyclonState {
    config: CyclonConfig,
    view: PartialView,
    /// Entries sent in the last shuffle we initiated; replaced first on merge.
    in_flight: Vec<ViewEntry>,
}

impl CyclonState {
    /// Creates a node's state with `bootstrap` as its initial neighbours.
    ///
    /// # Panics
    /// Panics if `shuffle_len` is zero or exceeds `view_size`.
    #[must_use]
    pub fn new(owner: NodeId, config: CyclonConfig, bootstrap: &[NodeId]) -> Self {
        assert!(
            config.shuffle_len > 0 && config.shuffle_len <= config.view_size,
            "shuffle_len must be in 1..=view_size"
        );
        let mut view = PartialView::new(owner, config.view_size);
        for &n in bootstrap {
            view.insert(ViewEntry::fresh(n));
        }
        CyclonState { config, view, in_flight: Vec::new() }
    }

    /// The node's current partial view.
    #[must_use]
    pub fn view(&self) -> &PartialView {
        &self.view
    }

    /// Owner id.
    #[must_use]
    pub fn owner(&self) -> NodeId {
        self.view.owner()
    }

    /// Configuration in use.
    #[must_use]
    pub fn config(&self) -> &CyclonConfig {
        &self.config
    }

    /// Starts one shuffle round. Returns `(target, request_entries)` or
    /// `None` when the view is empty (isolated node).
    pub fn start_shuffle<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> Option<(NodeId, Vec<ViewEntry>)> {
        self.view.increment_ages();
        let target = self.view.take_oldest()?;
        let mut exchange = self.view.take_random(rng, self.config.shuffle_len - 1);
        exchange.push(ViewEntry::fresh(self.owner()));
        // Remember what we gave away (minus our own fresh entry) so the
        // merge can put it back if the reply leaves holes.
        self.in_flight = exchange
            .iter()
            .filter(|e| e.node != self.owner())
            .copied()
            .chain(std::iter::once(ViewEntry { node: target.node, age: target.age }))
            .collect();
        Some((target.node, exchange))
    }

    /// Handles a shuffle request from `from`. Returns the reply entries.
    pub fn on_request<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        from: NodeId,
        received: Vec<ViewEntry>,
    ) -> Vec<ViewEntry> {
        let reply = self.view.take_random(rng, self.config.shuffle_len);
        self.merge(received, &reply);
        // The requester is alive right now: that is fresh information.
        self.view.insert(ViewEntry::fresh(from));
        reply
    }

    /// Handles the reply to a shuffle we initiated.
    pub fn on_reply(&mut self, received: Vec<ViewEntry>) {
        let sent = std::mem::take(&mut self.in_flight);
        self.merge(received, &sent);
    }

    /// Cyclon merge rule: received entries fill empty slots first; once
    /// full they may only replace entries that were part of the exchange;
    /// leftovers from the exchange set are re-inserted if room remains.
    fn merge(&mut self, received: Vec<ViewEntry>, sent: &[ViewEntry]) {
        for entry in received {
            if entry.node == self.owner() || self.view.contains(entry.node) {
                continue;
            }
            if self.view.len() < self.view.capacity() {
                self.view.insert(entry);
                continue;
            }
            // Full: evict one of the entries we sent away, if any remain.
            if let Some(victim) = sent.iter().find(|s| self.view.contains(s.node)) {
                self.view.remove(victim.node);
                self.view.insert(entry);
            }
        }
        // Top back up with what we sent, oldest information last.
        let mut leftovers: Vec<ViewEntry> = sent.to_vec();
        leftovers.sort_by_key(|e| e.age);
        for entry in leftovers {
            if self.view.len() >= self.view.capacity() {
                break;
            }
            self.view.insert(entry);
        }
    }

    /// Drops a neighbour known to be dead (input from a failure detector).
    pub fn expel(&mut self, node: NodeId) {
        self.view.remove(node);
    }
}

impl PeerSampler for CyclonState {
    fn peers(&self) -> Vec<NodeId> {
        self.view.nodes().collect()
    }

    fn sample_peers(&self, rng: &mut dyn rand::RngCore, k: usize) -> Vec<NodeId> {
        self.view.sample(rng, k).into_iter().map(|e| e.node).collect()
    }
}

/// [`Process`] adapter running Cyclon over `dd-sim`.
#[derive(Debug, Clone)]
pub struct CyclonProcess {
    /// The protocol state (public so composite nodes can reuse the view).
    pub state: CyclonState,
}

impl CyclonProcess {
    /// Creates the adapter.
    #[must_use]
    pub fn new(state: CyclonState) -> Self {
        CyclonProcess { state }
    }
}

impl Process for CyclonProcess {
    type Msg = CyclonMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, CyclonMsg>) {
        // Desynchronise rounds across nodes.
        let jitter = ctx.rng().gen_range(0..self.state.config.period.0.max(1));
        ctx.set_timer(Duration(jitter), SHUFFLE_TIMER);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, CyclonMsg>, from: NodeId, msg: CyclonMsg) {
        match msg {
            CyclonMsg::Request(entries) => {
                let reply = self.state.on_request(ctx.rng(), from, entries);
                ctx.metrics().incr("cyclon.requests");
                ctx.send(from, CyclonMsg::Reply(reply));
            }
            CyclonMsg::Reply(entries) => {
                self.state.on_reply(entries);
                ctx.metrics().incr("cyclon.replies");
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, CyclonMsg>, tag: TimerTag) {
        if tag != SHUFFLE_TIMER {
            return;
        }
        if let Some((target, entries)) = self.state.start_shuffle(ctx.rng()) {
            ctx.metrics().incr("cyclon.shuffles");
            ctx.send(target, CyclonMsg::Request(entries));
        }
        ctx.set_timer(self.state.config.period, SHUFFLE_TIMER);
    }

    fn on_up(&mut self, ctx: &mut Ctx<'_, CyclonMsg>) {
        // Rejoin: restart the shuffle timer; the stale view will self-heal.
        ctx.set_timer(self.state.config.period, SHUFFLE_TIMER);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_sim::{Sim, SimConfig, Time};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    fn cfg() -> CyclonConfig {
        CyclonConfig { view_size: 5, shuffle_len: 3, period: Duration(100) }
    }

    #[test]
    fn start_shuffle_targets_oldest_and_includes_self() {
        let mut s = CyclonState::new(NodeId(0), cfg(), &[NodeId(1), NodeId(2)]);
        // Age node 1 artificially by two rounds of increments.
        let mut r = rng();
        let (target1, entries) = s.start_shuffle(&mut r).unwrap();
        assert!(entries.iter().any(|e| e.node == NodeId(0) && e.age == 0), "self entry present");
        assert!(!s.view().contains(target1), "target removed from view");
    }

    #[test]
    fn empty_view_cannot_shuffle() {
        let mut s = CyclonState::new(NodeId(0), cfg(), &[]);
        assert!(s.start_shuffle(&mut rng()).is_none());
    }

    #[test]
    fn request_reply_exchanges_membership() {
        let mut a = CyclonState::new(NodeId(1), cfg(), &[NodeId(2)]);
        let mut b = CyclonState::new(NodeId(2), cfg(), &[NodeId(3)]);
        let mut r = rng();
        let (target, req) = a.start_shuffle(&mut r).unwrap();
        assert_eq!(target, NodeId(2));
        let reply = b.on_request(&mut r, NodeId(1), req);
        a.on_reply(reply);
        // b must now know a (fresh requester entry).
        assert!(b.view().contains(NodeId(1)));
        // a got b's knowledge of node 3: b's whole (one-entry) view is
        // sampled into the reply before the fresh requester entry lands,
        // and a has room to merge it.
        assert!(a.view().contains(NodeId(3)));
    }

    #[test]
    fn merge_never_introduces_self_or_duplicates() {
        let mut s = CyclonState::new(NodeId(5), cfg(), &[NodeId(1)]);
        let received = vec![
            ViewEntry::fresh(NodeId(5)), // self — must be ignored
            ViewEntry::fresh(NodeId(1)), // duplicate
            ViewEntry::fresh(NodeId(2)),
        ];
        s.on_request(&mut rng(), NodeId(9), received);
        let ids: Vec<NodeId> = s.view().nodes().collect();
        let set: HashSet<NodeId> = ids.iter().copied().collect();
        assert_eq!(ids.len(), set.len(), "no duplicates");
        assert!(!set.contains(&NodeId(5)), "no self");
        assert!(set.contains(&NodeId(2)));
        assert!(set.contains(&NodeId(9)), "requester learned");
    }

    #[test]
    fn expel_removes_dead_neighbour() {
        let mut s = CyclonState::new(NodeId(0), cfg(), &[NodeId(1), NodeId(2)]);
        s.expel(NodeId(1));
        assert!(!s.view().contains(NodeId(1)));
    }

    #[test]
    fn peer_sampler_sample_is_subset_of_view() {
        let s = CyclonState::new(NodeId(0), cfg(), &[NodeId(1), NodeId(2), NodeId(3)]);
        let mut r = rng();
        let sample = s.sample_peers(&mut r, 2);
        assert_eq!(sample.len(), 2);
        for n in sample {
            assert!(s.view().contains(n));
        }
    }

    /// End-to-end over the simulator: starting from a line topology (each
    /// node knows only its predecessor), shuffling produces connected,
    /// well-mixed views with in-degree spread far below a star/line.
    #[test]
    fn views_mix_over_simulated_rounds() {
        let n = 64u64;
        let mut sim: Sim<CyclonProcess> = Sim::new(SimConfig::default().seed(11));
        for i in 0..n {
            let boot = if i == 0 { vec![NodeId(n - 1)] } else { vec![NodeId(i - 1)] };
            let state = CyclonState::new(NodeId(i), cfg(), &boot);
            sim.add_node(NodeId(i), CyclonProcess::new(state));
        }
        sim.run_until(Time(30 * 100)); // 30 rounds
                                       // Views should be nearly full on average and in-degrees roughly
                                       // balanced (a line/star topology would concentrate them).
        let mut indegree = vec![0u32; n as usize];
        let mut total = 0usize;
        for i in 0..n {
            let v = sim.node(NodeId(i)).unwrap().state.view();
            assert!(v.len() >= 2, "view of {i} too small: {}", v.len());
            total += v.len();
            for peer in v.nodes() {
                indegree[peer.index()] += 1;
            }
        }
        let avg = total as f64 / n as f64;
        assert!(avg >= 4.0, "average view size too small: {avg}");
        let max = *indegree.iter().max().unwrap();
        let min = *indegree.iter().min().unwrap();
        assert!(min >= 1, "every node referenced at least once");
        assert!(max <= 20, "in-degree concentration too high: {max}");
        assert!(sim.metrics().counter("cyclon.shuffles") >= u64::from(25 * n as u32));
    }

    /// Views exclude a churned node eventually (entries age out by being
    /// shuffled away and never refreshed).
    #[test]
    fn dead_node_references_decay() {
        let n = 32u64;
        let dead = NodeId(31);
        let mut sim: Sim<CyclonProcess> = Sim::new(SimConfig::default().seed(3));
        for i in 0..n {
            let boot: Vec<NodeId> = (0..n).filter(|&j| j != i).take(5).map(NodeId).collect();
            sim.add_node(NodeId(i), CyclonProcess::new(CyclonState::new(NodeId(i), cfg(), &boot)));
        }
        sim.run_until(Time(5 * 100));
        sim.kill(dead);
        sim.run_until(Time(80 * 100));
        let refs: usize =
            (0..31).filter(|&i| sim.node(NodeId(i)).unwrap().state.view().contains(dead)).count();
        // Stale pointers to the dead node should be rare after 75 rounds.
        assert!(refs <= 6, "{refs} nodes still reference the dead node");
    }
}
