//! The [`PeerSampler`] abstraction: "give me some peers to gossip with".
//!
//! Epidemic protocols are written against this trait so that experiments can
//! swap a realistic Cyclon view for a full-membership oracle and measure how
//! much partial views cost (none of the paper's claims require global
//! knowledge — this lets us verify that).

use dd_sim::NodeId;
use rand::RngCore;

/// Source of gossip partners.
///
/// Object-safe on purpose: composite nodes hold `&dyn PeerSampler` so one
/// membership instance can serve several protocols.
pub trait PeerSampler {
    /// All currently known peers (unordered; possibly a partial view).
    fn peers(&self) -> Vec<NodeId>;

    /// Uniformly samples up to `k` distinct peers.
    fn sample_peers(&self, rng: &mut dyn RngCore, k: usize) -> Vec<NodeId>;

    /// Samples a single peer, if any is known.
    fn sample_one(&self, rng: &mut dyn RngCore) -> Option<NodeId> {
        self.sample_peers(rng, 1).into_iter().next()
    }

    /// Number of currently known peers.
    fn degree(&self) -> usize {
        self.peers().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    struct Fixed(Vec<NodeId>);

    impl PeerSampler for Fixed {
        fn peers(&self) -> Vec<NodeId> {
            self.0.clone()
        }
        fn sample_peers(&self, _rng: &mut dyn RngCore, k: usize) -> Vec<NodeId> {
            self.0.iter().copied().take(k).collect()
        }
    }

    #[test]
    fn default_sample_one_takes_first_of_sample() {
        let s = Fixed(vec![NodeId(4), NodeId(5)]);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(s.sample_one(&mut rng), Some(NodeId(4)));
        assert_eq!(s.degree(), 2);
    }

    #[test]
    fn empty_sampler_yields_none() {
        let s = Fixed(vec![]);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(s.sample_one(&mut rng), None);
        assert_eq!(s.degree(), 0);
    }

    #[test]
    fn trait_is_object_safe() {
        let s = Fixed(vec![NodeId(1)]);
        let d: &dyn PeerSampler = &s;
        assert_eq!(d.peers(), vec![NodeId(1)]);
    }
}
