//! Full-membership oracle.
//!
//! The paper's *soft-state layer* is "moderately sized and thus manageable
//! with a structured approach" (§II) — full membership there is realistic.
//! Experiments also use the oracle to isolate a protocol under test from
//! membership noise.

use crate::sampler::PeerSampler;
use dd_sim::NodeId;
use rand::seq::SliceRandom;
use rand::RngCore;

/// A complete, queryable membership list excluding the owner.
#[derive(Debug, Clone)]
pub struct MembershipOracle {
    owner: NodeId,
    members: Vec<NodeId>,
}

impl MembershipOracle {
    /// Creates an oracle for `owner` over `members` (the owner is filtered
    /// out; duplicates are removed).
    #[must_use]
    pub fn new(owner: NodeId, members: impl IntoIterator<Item = NodeId>) -> Self {
        let mut v: Vec<NodeId> = members.into_iter().filter(|&m| m != owner).collect();
        v.sort();
        v.dedup();
        MembershipOracle { owner, members: v }
    }

    /// Oracle for node `owner` within dense population `0..n`.
    #[must_use]
    pub fn dense(owner: NodeId, n: u64) -> Self {
        Self::new(owner, (0..n).map(NodeId))
    }

    /// Owner id.
    #[must_use]
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// Adds a member (idempotent).
    pub fn join(&mut self, node: NodeId) {
        if node != self.owner {
            if let Err(idx) = self.members.binary_search(&node) {
                self.members.insert(idx, node);
            }
        }
    }

    /// Removes a member (idempotent).
    pub fn leave(&mut self, node: NodeId) {
        if let Ok(idx) = self.members.binary_search(&node) {
            self.members.remove(idx);
        }
    }

    /// Whether `node` is a member.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.binary_search(&node).is_ok()
    }
}

impl PeerSampler for MembershipOracle {
    fn peers(&self) -> Vec<NodeId> {
        self.members.clone()
    }

    fn sample_peers(&self, rng: &mut dyn RngCore, k: usize) -> Vec<NodeId> {
        let mut v = self.members.clone();
        v.shuffle(rng);
        v.truncate(k);
        v
    }

    fn degree(&self) -> usize {
        self.members.len()
    }
}

/// Constant-memory full-membership sampler over the dense population
/// `0..n` — the large-scale twin of [`MembershipOracle`].
///
/// [`MembershipOracle`] stores the member list explicitly (O(N) per node),
/// which is fine for the soft-state tier but O(N²) across a 50 000-node
/// persistent layer. `DensePopulation` stores only `(owner, n)` and draws
/// samples arithmetically, so dissemination experiments run at the paper's
/// headline scale.
#[derive(Debug, Clone, Copy)]
pub struct DensePopulation {
    owner: NodeId,
    n: u64,
}

impl DensePopulation {
    /// Sampler for `owner` within population `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(owner: NodeId, n: u64) -> Self {
        assert!(n > 0, "population must be non-empty");
        DensePopulation { owner, n }
    }

    /// Population size (including the owner).
    #[must_use]
    pub fn population(&self) -> u64 {
        self.n
    }
}

impl PeerSampler for DensePopulation {
    fn peers(&self) -> Vec<NodeId> {
        (0..self.n).map(NodeId).filter(|&m| m != self.owner).collect()
    }

    fn sample_peers(&self, rng: &mut dyn RngCore, k: usize) -> Vec<NodeId> {
        use rand::Rng;
        let available = (self.n - u64::from(self.owner.0 < self.n)) as usize;
        if k >= available {
            return self.peers();
        }
        let mut seen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            let cand = NodeId(rng.gen_range(0..self.n));
            if cand != self.owner && seen.insert(cand) {
                out.push(cand);
            }
        }
        out
    }

    fn degree(&self) -> usize {
        (self.n - u64::from(self.owner.0 < self.n)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn dense_excludes_owner() {
        let o = MembershipOracle::dense(NodeId(3), 10);
        assert_eq!(o.degree(), 9);
        assert!(!o.contains(NodeId(3)));
        assert!(o.contains(NodeId(0)));
    }

    #[test]
    fn join_and_leave_are_idempotent() {
        let mut o = MembershipOracle::dense(NodeId(0), 3);
        o.join(NodeId(9));
        o.join(NodeId(9));
        assert_eq!(o.degree(), 3);
        o.leave(NodeId(9));
        o.leave(NodeId(9));
        assert_eq!(o.degree(), 2);
        o.join(NodeId(0)); // owner never joins its own list
        assert!(!o.contains(NodeId(0)));
    }

    #[test]
    fn duplicates_in_constructor_are_removed() {
        let o = MembershipOracle::new(NodeId(0), [NodeId(1), NodeId(1), NodeId(2)]);
        assert_eq!(o.degree(), 2);
    }

    #[test]
    fn sample_is_distinct_and_bounded() {
        let o = MembershipOracle::dense(NodeId(0), 100);
        let mut rng = SmallRng::seed_from_u64(5);
        let s = o.sample_peers(&mut rng, 10);
        assert_eq!(s.len(), 10);
        let set: HashSet<NodeId> = s.into_iter().collect();
        assert_eq!(set.len(), 10);
        assert!(!set.contains(&NodeId(0)));
    }

    #[test]
    fn dense_population_samples_are_distinct_and_exclude_owner() {
        let d = DensePopulation::new(NodeId(5), 1_000);
        let mut rng = SmallRng::seed_from_u64(9);
        let s = d.sample_peers(&mut rng, 50);
        assert_eq!(s.len(), 50);
        let set: HashSet<NodeId> = s.into_iter().collect();
        assert_eq!(set.len(), 50);
        assert!(!set.contains(&NodeId(5)));
        assert_eq!(d.degree(), 999);
        assert_eq!(d.population(), 1_000);
    }

    #[test]
    fn dense_population_oversample_returns_everyone() {
        let d = DensePopulation::new(NodeId(0), 4);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut s = d.sample_peers(&mut rng, 10);
        s.sort();
        assert_eq!(s, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn dense_population_agrees_with_oracle_degree() {
        let d = DensePopulation::new(NodeId(3), 100);
        let o = MembershipOracle::dense(NodeId(3), 100);
        assert_eq!(d.degree(), o.degree());
        assert_eq!(d.peers(), o.peers());
    }

    #[test]
    fn sample_covers_population_over_many_draws() {
        let o = MembershipOracle::dense(NodeId(0), 20);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut seen = HashSet::new();
        for _ in 0..200 {
            seen.extend(o.sample_peers(&mut rng, 3));
        }
        assert_eq!(seen.len(), 19, "uniform sampling should hit everyone");
    }
}
