//! Push-sum gossip aggregation (Kempe, Dobra, Gehrke).
//!
//! §III-C of the paper: simple aggregations — counts, maximums, averages —
//! should be available "with minimal overhead". Push-sum computes averages
//! (and therefore sums and counts) with mass conservation: each node holds
//! `(sum, weight)`, each round it sends half of both to a random peer and
//! keeps half; `sum/weight` converges exponentially to the global average
//! at every node. Min/max propagate by simple idempotent gossip.

use dd_membership::PeerSampler;
use dd_sim::{Ctx, Duration, NodeId, Process, TimerTag};
use rand::Rng;

/// Timer tag for push-sum rounds.
pub const PUSHSUM_TIMER: TimerTag = TimerTag(0xA66);

/// Which aggregate a node is computing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Global average of the nodes' values.
    Average,
    /// Global sum (push-sum average × size estimate supplied by caller, or
    /// weight-1-at-one-node trick when used via [`PushSumState::for_sum`]).
    Sum,
    /// Number of participating nodes (value 1 everywhere, weight 1 at one
    /// designated node).
    Count,
    /// Global minimum (idempotent gossip).
    Min,
    /// Global maximum (idempotent gossip).
    Max,
}

/// Sans-IO push-sum state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PushSumState {
    sum: f64,
    weight: f64,
    minimum: f64,
    maximum: f64,
}

impl PushSumState {
    /// Standard averaging initialisation: every node starts with its local
    /// value and weight 1.
    #[must_use]
    pub fn for_average(value: f64) -> Self {
        PushSumState { sum: value, weight: 1.0, minimum: value, maximum: value }
    }

    /// Counting initialisation (Jelasity et al.): every node holds value 1;
    /// exactly one node (the initiator) holds weight 1, everyone else 0.
    /// The converged average `Σ1/1 = N` is the population size; more
    /// generally `sum/weight → N`.
    #[must_use]
    pub fn for_count(initiator: bool) -> Self {
        PushSumState {
            sum: 1.0,
            weight: if initiator { 1.0 } else { 0.0 },
            minimum: 1.0,
            maximum: 1.0,
        }
    }

    /// Sum initialisation: value at every node, weight 1 only at the
    /// initiator, so `sum/weight → Σ values`.
    #[must_use]
    pub fn for_sum(value: f64, initiator: bool) -> Self {
        PushSumState {
            sum: value,
            weight: if initiator { 1.0 } else { 0.0 },
            minimum: value,
            maximum: value,
        }
    }

    /// Splits the state for one gossip round: returns the half to send;
    /// `self` keeps the other half. Mass (`sum`, `weight`) is conserved.
    pub fn emit_half(&mut self) -> (f64, f64) {
        self.sum /= 2.0;
        self.weight /= 2.0;
        (self.sum, self.weight)
    }

    /// Absorbs a received share.
    pub fn absorb(&mut self, sum: f64, weight: f64) {
        self.sum += sum;
        self.weight += weight;
    }

    /// Merges min/max extremes (independent of mass exchange).
    pub fn merge_extremes(&mut self, minimum: f64, maximum: f64) {
        self.minimum = self.minimum.min(minimum);
        self.maximum = self.maximum.max(maximum);
    }

    /// The current ratio estimate (`sum/weight`); `None` while this node's
    /// weight is (numerically) zero.
    #[must_use]
    pub fn ratio(&self) -> Option<f64> {
        (self.weight > 1e-12).then(|| self.sum / self.weight)
    }

    /// Current mass, for conservation checks.
    #[must_use]
    pub fn mass(&self) -> (f64, f64) {
        (self.sum, self.weight)
    }

    /// Observed minimum.
    #[must_use]
    pub fn minimum(&self) -> f64 {
        self.minimum
    }

    /// Observed maximum.
    #[must_use]
    pub fn maximum(&self) -> f64 {
        self.maximum
    }
}

/// Push-sum share exchanged between nodes.
#[derive(Debug, Clone, Copy)]
pub struct PushSumMsg {
    /// Half of the sender's sum.
    pub sum: f64,
    /// Half of the sender's weight.
    pub weight: f64,
    /// Sender's running minimum.
    pub minimum: f64,
    /// Sender's running maximum.
    pub maximum: f64,
}

/// Push-sum gossip process.
#[derive(Debug, Clone)]
pub struct PushSumNode<S> {
    /// Peer source.
    pub peers: S,
    /// Local aggregation state.
    pub state: PushSumState,
    period: Duration,
}

impl<S: PeerSampler> PushSumNode<S> {
    /// Creates a node gossiping once per `period`.
    #[must_use]
    pub fn new(peers: S, state: PushSumState, period: Duration) -> Self {
        PushSumNode { peers, state, period }
    }

    /// Current aggregate estimates `(avg_or_ratio, min, max)`.
    #[must_use]
    pub fn estimates(&self) -> (Option<f64>, f64, f64) {
        (self.state.ratio(), self.state.minimum(), self.state.maximum())
    }
}

impl<S: PeerSampler> Process for PushSumNode<S> {
    type Msg = PushSumMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let jitter = ctx.rng().gen_range(0..self.period.0.max(1));
        ctx.set_timer(Duration(jitter), PUSHSUM_TIMER);
    }

    fn on_message(&mut self, _ctx: &mut Ctx<'_, Self::Msg>, _from: NodeId, msg: Self::Msg) {
        self.state.absorb(msg.sum, msg.weight);
        self.state.merge_extremes(msg.minimum, msg.maximum);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, tag: TimerTag) {
        if tag != PUSHSUM_TIMER {
            return;
        }
        if let Some(peer) = self.peers.sample_one(ctx.rng()) {
            let (s, w) = self.state.emit_half();
            ctx.send(
                peer,
                PushSumMsg {
                    sum: s,
                    weight: w,
                    minimum: self.state.minimum(),
                    maximum: self.state.maximum(),
                },
            );
            ctx.metrics().incr("pushsum.rounds");
        }
        ctx.set_timer(self.period, PUSHSUM_TIMER);
    }

    fn on_up(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        ctx.set_timer(self.period, PUSHSUM_TIMER);
    }
}

/// Runs push-sum over `n` simulated nodes holding `values` and returns the
/// per-node ratio estimates after `rounds` (harness for E10 and §III-C).
#[must_use]
pub fn run_pushsum(values: &[f64], rounds: u64, period: u64, seed: u64) -> Vec<Option<f64>> {
    use dd_membership::MembershipOracle;
    use dd_sim::{Sim, SimConfig, Time};
    let n = values.len() as u64;
    let mut sim: Sim<PushSumNode<MembershipOracle>> = Sim::new(SimConfig::default().seed(seed));
    for (i, &v) in values.iter().enumerate() {
        let id = NodeId(i as u64);
        sim.add_node(
            id,
            PushSumNode::new(
                MembershipOracle::dense(id, n),
                PushSumState::for_average(v),
                Duration(period),
            ),
        );
    }
    sim.run_until(Time(rounds * period));
    (0..n).map(|i| sim.node(NodeId(i)).unwrap().state.ratio()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_absorb_conserves_mass() {
        let mut a = PushSumState::for_average(10.0);
        let mut b = PushSumState::for_average(20.0);
        let (s, w) = a.emit_half();
        b.absorb(s, w);
        let (sa, wa) = a.mass();
        let (sb, wb) = b.mass();
        assert!((sa + sb - 30.0).abs() < 1e-12);
        assert!((wa + wb - 2.0).abs() < 1e-12);
    }

    #[test]
    fn two_nodes_converge_to_mean() {
        let mut a = PushSumState::for_average(0.0);
        let mut b = PushSumState::for_average(100.0);
        for _ in 0..60 {
            let (s, w) = a.emit_half();
            b.absorb(s, w);
            let (s, w) = b.emit_half();
            a.absorb(s, w);
        }
        assert!((a.ratio().unwrap() - 50.0).abs() < 1e-6);
        assert!((b.ratio().unwrap() - 50.0).abs() < 1e-6);
    }

    #[test]
    fn count_mode_estimates_population() {
        // Offline round-robin exchange across 8 nodes.
        let n = 8;
        let mut states: Vec<PushSumState> =
            (0..n).map(|i| PushSumState::for_count(i == 0)).collect();
        for round in 0..200 {
            for i in 0..n {
                let j = (i + 1 + round % (n - 1)) % n;
                let (s, w) = states[i].emit_half();
                states[j].absorb(s, w);
            }
        }
        for s in &states {
            let est = s.ratio().expect("weight spread to all nodes");
            assert!((est - n as f64).abs() < 0.05, "count estimate {est}");
        }
    }

    #[test]
    fn extremes_merge_idempotently() {
        let mut s = PushSumState::for_average(5.0);
        s.merge_extremes(1.0, 9.0);
        s.merge_extremes(3.0, 7.0);
        assert_eq!(s.minimum(), 1.0);
        assert_eq!(s.maximum(), 9.0);
    }

    #[test]
    fn ratio_is_none_without_weight() {
        let s = PushSumState::for_count(false);
        assert!(s.ratio().is_none());
    }

    #[test]
    fn simulated_average_converges_everywhere() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let truth = 49.5;
        let est = run_pushsum(&values, 40, 100, 3);
        for (i, e) in est.iter().enumerate() {
            let e = e.expect("converged weight");
            assert!((e - truth).abs() / truth < 0.02, "node {i}: {e}");
        }
    }

    #[test]
    fn simulated_min_max_propagate() {
        use dd_membership::MembershipOracle;
        use dd_sim::{Sim, SimConfig, Time};
        let n = 64u64;
        let mut sim: Sim<PushSumNode<MembershipOracle>> = Sim::new(SimConfig::default().seed(5));
        for i in 0..n {
            sim.add_node(
                NodeId(i),
                PushSumNode::new(
                    MembershipOracle::dense(NodeId(i), n),
                    PushSumState::for_average(i as f64),
                    Duration(100),
                ),
            );
        }
        sim.run_until(Time(25 * 100));
        for i in 0..n {
            let (_, min, max) = sim.node(NodeId(i)).unwrap().estimates();
            assert_eq!(min, 0.0, "node {i} min");
            assert_eq!(max, (n - 1) as f64, "node {i} max");
        }
    }
}
