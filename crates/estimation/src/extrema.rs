//! Extrema-propagation network size estimation.
//!
//! Every node draws `K` i.i.d. `Exp(1)` values; gossip exchanges keep the
//! element-wise minimum. Once the vectors converge (they do in O(diameter)
//! rounds), every node knows the same `K` global minima, and
//! `N̂ = (K−1) / Σ minima` estimates the number of participating nodes
//! (the minimum of `N` exponentials is `Exp(N)`, so each slot has mean
//! `1/N`). Accuracy improves with `K` (relative error ≈ `1/√(K−2)`).

use dd_membership::PeerSampler;
use dd_sim::{Ctx, Duration, NodeId, Process, TimerTag};
use rand::Rng;
use rand_distr::{Distribution, Exp1};

/// Timer tag for gossip exchanges.
pub const EXTREMA_TIMER: TimerTag = TimerTag(0xE87);

/// The mergeable extrema vector and its estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtremaEstimator {
    mins: Vec<f64>,
}

impl ExtremaEstimator {
    /// Creates the node's initial vector of `k` exponential draws.
    ///
    /// # Panics
    /// Panics if `k < 3` (the estimator needs `K − 1 > 1` for finite
    /// variance).
    #[must_use]
    pub fn generate<R: Rng + ?Sized>(rng: &mut R, k: usize) -> Self {
        assert!(k >= 3, "extrema estimation needs k >= 3");
        let mins = (0..k).map(|_| Exp1.sample(rng)).collect();
        ExtremaEstimator { mins }
    }

    /// Builds from an explicit vector (deserialisation, tests).
    #[must_use]
    pub fn from_mins(mins: Vec<f64>) -> Self {
        ExtremaEstimator { mins }
    }

    /// The vector of current minima.
    #[must_use]
    pub fn mins(&self) -> &[f64] {
        &self.mins
    }

    /// Element-wise minimum merge — commutative, associative, idempotent,
    /// hence safe under duplicated and reordered gossip.
    ///
    /// Returns `true` when any slot changed (useful for convergence
    /// detection).
    pub fn merge(&mut self, other: &ExtremaEstimator) -> bool {
        let mut changed = false;
        for (a, b) in self.mins.iter_mut().zip(&other.mins) {
            if b < a {
                *a = *b;
                changed = true;
            }
        }
        changed
    }

    /// Current size estimate `(K−1)/Σ minima`.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        let sum: f64 = self.mins.iter().sum();
        if sum <= 0.0 {
            return f64::INFINITY;
        }
        (self.mins.len() as f64 - 1.0) / sum
    }
}

/// Gossip process converging every node's vector to the global minima.
#[derive(Debug, Clone)]
pub struct ExtremaNode<S> {
    /// Peer source.
    pub peers: S,
    /// The local estimator state.
    pub estimator: ExtremaEstimator,
    period: Duration,
    fanout: usize,
}

/// Messages: just the vector.
pub type ExtremaMsg = Vec<f64>;

impl<S: PeerSampler> ExtremaNode<S> {
    /// Creates a node gossiping every `period` ticks to `fanout` peers.
    #[must_use]
    pub fn new(peers: S, estimator: ExtremaEstimator, period: Duration, fanout: usize) -> Self {
        ExtremaNode { peers, estimator, period, fanout }
    }

    /// Current size estimate.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        self.estimator.estimate()
    }
}

impl<S: PeerSampler> Process for ExtremaNode<S> {
    type Msg = ExtremaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let jitter = ctx.rng().gen_range(0..self.period.0.max(1));
        ctx.set_timer(Duration(jitter), EXTREMA_TIMER);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
        let other = ExtremaEstimator::from_mins(msg);
        if self.estimator.merge(&other) {
            ctx.metrics().incr("extrema.updates");
        }
        // Push-pull: reply with our (merged) vector so both converge.
        let _ = from;
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, tag: TimerTag) {
        if tag != EXTREMA_TIMER {
            return;
        }
        let targets = self.peers.sample_peers(ctx.rng(), self.fanout);
        for t in targets {
            ctx.send(t, self.estimator.mins().to_vec());
        }
        ctx.set_timer(self.period, EXTREMA_TIMER);
    }

    fn on_up(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        ctx.set_timer(self.period, EXTREMA_TIMER);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_membership::MembershipOracle;
    use dd_sim::{Sim, SimConfig, Time};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn merge_keeps_element_wise_minima() {
        let mut a = ExtremaEstimator::from_mins(vec![0.5, 2.0, 1.0]);
        let b = ExtremaEstimator::from_mins(vec![1.0, 1.5, 0.2]);
        assert!(a.merge(&b));
        assert_eq!(a.mins(), &[0.5, 1.5, 0.2]);
        // idempotent
        let mut a2 = a.clone();
        assert!(!a2.merge(&b));
        assert_eq!(a2, a);
    }

    #[test]
    fn merge_is_commutative() {
        let x = ExtremaEstimator::from_mins(vec![0.3, 0.9]);
        let y = ExtremaEstimator::from_mins(vec![0.7, 0.1]);
        let mut xy = x.clone();
        xy.merge(&y);
        let mut yx = y.clone();
        yx.merge(&x);
        assert_eq!(xy, yx);
    }

    #[test]
    fn offline_estimate_converges_to_population_size() {
        // Merge all vectors offline: estimator should be within ~10 % for
        // K = 512 at N = 1000.
        let n = 1_000u64;
        let k = 512;
        let mut rng = SmallRng::seed_from_u64(42);
        let mut global = ExtremaEstimator::generate(&mut rng, k);
        for _ in 1..n {
            let node = ExtremaEstimator::generate(&mut rng, k);
            global.merge(&node);
        }
        let est = global.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.15, "estimate {est} for N={n} (rel err {rel})");
    }

    #[test]
    fn accuracy_improves_with_k() {
        let n = 500u64;
        let err_for_k = |k: usize, seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut global = ExtremaEstimator::generate(&mut rng, k);
            for _ in 1..n {
                global.merge(&ExtremaEstimator::generate(&mut rng, k));
            }
            (global.estimate() - n as f64).abs() / n as f64
        };
        // Average over a few seeds to avoid flakiness.
        let small: f64 = (0..5).map(|s| err_for_k(16, s)).sum::<f64>() / 5.0;
        let large: f64 = (0..5).map(|s| err_for_k(1024, s)).sum::<f64>() / 5.0;
        assert!(large < small, "k=1024 err {large} should beat k=16 err {small}");
        assert!(large < 0.1);
    }

    #[test]
    fn estimate_of_single_node_is_small() {
        let mut rng = SmallRng::seed_from_u64(1);
        let e = ExtremaEstimator::generate(&mut rng, 128);
        // One node: estimate should be O(1), certainly below 3.
        assert!(e.estimate() < 3.0, "single-node estimate {}", e.estimate());
    }

    #[test]
    fn gossip_converges_all_nodes_to_common_estimate() {
        let n = 200u64;
        let k = 256;
        let period = Duration(100);
        let mut sim: Sim<ExtremaNode<MembershipOracle>> = Sim::new(SimConfig::default().seed(9));
        let mut seeder = SmallRng::seed_from_u64(77);
        for i in 0..n {
            let est = ExtremaEstimator::generate(&mut seeder, k);
            let oracle = MembershipOracle::dense(NodeId(i), n);
            sim.add_node(NodeId(i), ExtremaNode::new(oracle, est, period, 2));
        }
        sim.run_until(Time(30 * 100));
        let estimates: Vec<f64> = (0..n).map(|i| sim.node(NodeId(i)).unwrap().estimate()).collect();
        let first = estimates[0];
        assert!(
            estimates.iter().all(|e| (e - first).abs() / first < 0.01),
            "all nodes should agree after convergence"
        );
        let rel = (first - n as f64).abs() / n as f64;
        assert!(rel < 0.2, "converged estimate {first} for N={n}");
    }

    #[test]
    #[should_panic(expected = "k >= 3")]
    fn tiny_k_is_rejected() {
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = ExtremaEstimator::generate(&mut rng, 2);
    }
}
