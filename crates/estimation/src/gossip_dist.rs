//! Gossip protocol for distribution estimation.
//!
//! Nodes seed a [`DistSketch`] with their locally stored items and push the
//! sketch to a random peer each round (push-pull: the receiver replies with
//! its own merged sketch). Because the sketch union is idempotent and keyed
//! by item hash, replication-induced duplicates (the paper's §III-B-1
//! concern) do not bias the estimate, and nodes that crash simply stop
//! contributing — their items remain represented via replicas.

use crate::sketch::DistSketch;
use dd_membership::PeerSampler;
use dd_sim::{Ctx, Duration, NodeId, Process, TimerTag};
use rand::Rng;

/// Timer tag for sketch gossip.
pub const DIST_TIMER: TimerTag = TimerTag(0xD157);

/// Messages: a sketch push (expects a reply) or a reply.
#[derive(Debug, Clone)]
pub enum DistMsg {
    /// Push of the sender's sketch; receiver merges and replies.
    Push(DistSketch),
    /// Reply carrying the receiver's merged sketch.
    Reply(DistSketch),
}

/// Distribution-estimation gossip node.
#[derive(Debug, Clone)]
pub struct DistEstimationNode<S> {
    /// Peer source.
    pub peers: S,
    /// The merged sketch (public: the store layer reads the estimate).
    pub sketch: DistSketch,
    period: Duration,
}

impl<S: PeerSampler> DistEstimationNode<S> {
    /// Creates a node whose local items are already folded into `sketch`.
    #[must_use]
    pub fn new(peers: S, sketch: DistSketch, period: Duration) -> Self {
        DistEstimationNode { peers, sketch, period }
    }

    /// Convenience: seeds a fresh sketch of capacity `k` from local
    /// `(item_hash, attr)` pairs.
    #[must_use]
    pub fn seeded(
        peers: S,
        k: usize,
        items: impl IntoIterator<Item = (u64, f64)>,
        period: Duration,
    ) -> Self {
        let mut sketch = DistSketch::new(k);
        for (h, v) in items {
            sketch.observe(h, v);
        }
        Self::new(peers, sketch, period)
    }
}

impl<S: PeerSampler> Process for DistEstimationNode<S> {
    type Msg = DistMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let jitter = ctx.rng().gen_range(0..self.period.0.max(1));
        ctx.set_timer(Duration(jitter), DIST_TIMER);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: NodeId, msg: Self::Msg) {
        match msg {
            DistMsg::Push(sketch) => {
                self.sketch.merge(&sketch);
                ctx.send(from, DistMsg::Reply(self.sketch.clone()));
                ctx.metrics().incr("dist.exchanges");
            }
            DistMsg::Reply(sketch) => {
                self.sketch.merge(&sketch);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, tag: TimerTag) {
        if tag != DIST_TIMER {
            return;
        }
        if let Some(peer) = self.peers.sample_one(ctx.rng()) {
            ctx.send(peer, DistMsg::Push(self.sketch.clone()));
        }
        ctx.set_timer(self.period, DIST_TIMER);
    }

    fn on_up(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        ctx.set_timer(self.period, DIST_TIMER);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_membership::MembershipOracle;
    use dd_sim::{Sim, SimConfig, Time};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use rand_distr::{Distribution, Normal};

    /// Builds a population where every item is replicated on `r` nodes
    /// (duplicate hazard) and checks the gossiped sketch still estimates
    /// the distribution accurately.
    #[test]
    fn converges_despite_replication_duplicates() {
        let n = 100u64;
        let r = 5usize;
        let items_per_node = 50usize;
        let period = Duration(100);
        let mut rng = SmallRng::seed_from_u64(11);
        let dist = Normal::new(50.0, 10.0).unwrap();

        // Generate distinct items, then replicate each onto r nodes.
        let total_items = (n as usize) * items_per_node / r;
        let items: Vec<(u64, f64)> = (0..total_items)
            .map(|i| (dd_sim::rng::mix(0xA11, i as u64), dist.sample(&mut rng)))
            .collect();
        let mut per_node: Vec<Vec<(u64, f64)>> = vec![Vec::new(); n as usize];
        for (idx, item) in items.iter().enumerate() {
            for k in 0..r {
                per_node[(idx * 13 + k * 29) % n as usize].push(*item);
            }
        }

        let mut sim: Sim<DistEstimationNode<MembershipOracle>> =
            Sim::new(SimConfig::default().seed(2));
        for i in 0..n {
            let node = DistEstimationNode::seeded(
                MembershipOracle::dense(NodeId(i), n),
                512,
                per_node[i as usize].iter().copied(),
                period,
            );
            sim.add_node(NodeId(i), node);
        }
        sim.run_until(Time(20 * 100));

        let truth: Vec<f64> = items.iter().map(|(_, v)| *v).collect();
        for probe in [0u64, n / 2, n - 1] {
            let sketch = &sim.node(NodeId(probe)).unwrap().sketch;
            let ks = sketch.ks_distance(&truth);
            assert!(ks < 0.08, "node {probe} KS {ks}");
            let est = sketch.distinct_estimate();
            let rel = (est - total_items as f64).abs() / total_items as f64;
            assert!(rel < 0.25, "distinct estimate {est} vs {total_items}");
        }
    }

    #[test]
    fn sketches_equalise_across_nodes() {
        let n = 32u64;
        let period = Duration(100);
        let mut sim: Sim<DistEstimationNode<MembershipOracle>> =
            Sim::new(SimConfig::default().seed(4));
        for i in 0..n {
            // Each node holds one item with value = its id.
            let node = DistEstimationNode::seeded(
                MembershipOracle::dense(NodeId(i), n),
                64,
                [(dd_sim::rng::mix(7, i), i as f64)],
                period,
            );
            sim.add_node(NodeId(i), node);
        }
        sim.run_until(Time(25 * 100));
        let reference = sim.node(NodeId(0)).unwrap().sketch.clone();
        for i in 1..n {
            assert_eq!(
                sim.node(NodeId(i)).unwrap().sketch.values(),
                reference.values(),
                "node {i} sketch diverges"
            );
        }
        assert_eq!(reference.len(), n as usize, "all 32 items fit the sketch");
    }

    #[test]
    fn churned_nodes_do_not_stall_estimation() {
        let n = 60u64;
        let period = Duration(100);
        let mut sim: Sim<DistEstimationNode<MembershipOracle>> =
            Sim::new(SimConfig::default().seed(6));
        for i in 0..n {
            let node = DistEstimationNode::seeded(
                MembershipOracle::dense(NodeId(i), n),
                256,
                [(dd_sim::rng::mix(9, i), i as f64)],
                period,
            );
            sim.add_node(NodeId(i), node);
        }
        // Kill a third of the population early.
        for i in 0..n / 3 {
            sim.schedule_down(Time(150), NodeId(i * 3));
        }
        sim.run_until(Time(30 * 100));
        let alive = NodeId(1);
        let sketch = &sim.node(alive).unwrap().sketch;
        // The survivors' sketch should still cover most of the population's
        // items (dead nodes' items were gossiped before/after they died).
        assert!(sketch.len() as u64 >= n * 2 / 3, "sketch len {}", sketch.len());
    }
}
