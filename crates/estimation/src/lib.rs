//! # dd-estimation — epidemic estimation and aggregation
//!
//! The paper leans on three decentralised estimation primitives:
//!
//! * **Network size** (§III-A): *"The number of nodes could be estimated
//!   also in an epidemic manner as in \[23\]"* — [`extrema`] implements
//!   extrema propagation (Cardoso, Baquero, Almeida, LADC'09): gossip the
//!   element-wise minima of per-node exponential samples; the estimator
//!   `(K−1)/Σmin` is unbiased and churn-tolerant.
//! * **Data distribution** (§III-B-1): *"Recent work on this subject
//!   \\[26,27\\] based itself on epidemic techniques show that it is possible to
//!   obtain accurate estimation of distribution for a given parameter"* —
//!   [`sketch`] implements a bottom-k (KMV) sample sketch whose merge is a
//!   commutative, idempotent union, making it immune to the "large number
//!   of duplicates due to redundancy" the paper worries about;
//!   [`gossip_dist`] gossips it.
//! * **Aggregates** (§III-C): *"it is straightforward to offer simple
//!   aggregations to clients with minimal overhead"* — [`pushsum`]
//!   implements push-sum averaging/counting (Kempe et al.) plus epidemic
//!   min/max.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extrema;
pub mod gossip_dist;
pub mod pushsum;
pub mod sketch;

pub use extrema::{ExtremaEstimator, ExtremaNode};
pub use gossip_dist::{DistEstimationNode, DistMsg};
pub use pushsum::{Aggregate, PushSumNode, PushSumState};
pub use sketch::DistSketch;
