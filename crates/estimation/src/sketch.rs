//! Bottom-k (KMV) distribution sketch.
//!
//! The paper (§III-B-1) flags two hazards for decentralised distribution
//! estimation: *"a large number of duplicates \[27\] due to the redundancy,
//! and high churn rates"*. A bottom-k sketch keyed by item hash solves the
//! duplicate problem structurally: an item replicated on 10 nodes has one
//! hash, so unions count it once; and the merge being commutative,
//! associative and idempotent makes gossip ordering and repetition
//! harmless. The k kept items are a uniform sample of *distinct* items, so
//! their attribute values estimate the data distribution, from which
//! [`DistSketch::equi_depth_edges`] derives the bucket boundaries that
//! distribution-aware sieves (`dd-sieve::HistogramSieve`) consume.

use std::collections::BTreeMap;

/// Bottom-k sketch over `(item_hash, attribute)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct DistSketch {
    k: usize,
    /// Item hash → attribute value, keeping the `k` smallest hashes.
    entries: BTreeMap<u64, f64>,
}

impl DistSketch {
    /// Empty sketch of capacity `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "sketch capacity must be positive");
        DistSketch { k, entries: BTreeMap::new() }
    }

    /// Capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Number of retained items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Observes one item (identified by a stable hash) with its attribute.
    /// Duplicate observations of the same item are absorbed.
    pub fn observe(&mut self, item_hash: u64, attr: f64) {
        self.entries.insert(item_hash, attr);
        self.truncate();
    }

    /// Union-merge with another sketch (idempotent, commutative).
    pub fn merge(&mut self, other: &DistSketch) {
        for (&h, &v) in &other.entries {
            self.entries.insert(h, v);
        }
        self.truncate();
    }

    fn truncate(&mut self) {
        while self.entries.len() > self.k {
            let last = *self.entries.keys().next_back().expect("non-empty");
            self.entries.remove(&last);
        }
    }

    /// The retained attribute values (a uniform sample of distinct items).
    #[must_use]
    pub fn values(&self) -> Vec<f64> {
        self.entries.values().copied().collect()
    }

    /// Estimated number of **distinct** items observed, via the KMV
    /// estimator `(k−1) / max_kept_normalised_hash`. Falls back to the
    /// exact count when fewer than `k` items were seen.
    #[must_use]
    pub fn distinct_estimate(&self) -> f64 {
        if self.entries.len() < self.k {
            return self.entries.len() as f64;
        }
        let max_hash = *self.entries.keys().next_back().expect("non-empty") as f64;
        let u = max_hash / u64::MAX as f64;
        if u <= 0.0 {
            return self.entries.len() as f64;
        }
        (self.k as f64 - 1.0) / u
    }

    /// Estimated `q`-quantile (0..=1) of the attribute distribution.
    /// Returns `None` on an empty sketch.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let mut v = self.values();
        if v.is_empty() {
            return None;
        }
        v.sort_by(f64::total_cmp);
        let rank = ((q.clamp(0.0, 1.0) * v.len() as f64).ceil() as usize).clamp(1, v.len());
        Some(v[rank - 1])
    }

    /// Equi-depth bucket edges (`buckets − 1` edges) from the sketch —
    /// input for `HistogramSieve`.
    ///
    /// Returns `None` while the sketch holds fewer than `buckets` values.
    #[must_use]
    pub fn equi_depth_edges(&self, buckets: usize) -> Option<Vec<f64>> {
        if buckets < 2 || self.len() < buckets {
            return None;
        }
        let mut v = self.values();
        v.sort_by(f64::total_cmp);
        let n = v.len();
        Some((1..buckets).map(|k| v[(k * n / buckets).min(n - 1)]).collect())
    }

    /// Kolmogorov–Smirnov distance between the sketch's empirical CDF and a
    /// reference sample — the accuracy measure for experiment E7.
    #[must_use]
    pub fn ks_distance(&self, reference: &[f64]) -> f64 {
        let mut a = self.values();
        let mut b: Vec<f64> = reference.to_vec();
        if a.is_empty() || b.is_empty() {
            return 1.0;
        }
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        let mut d: f64 = 0.0;
        let (mut i, mut j) = (0usize, 0usize);
        // Advance through ties on both sides before comparing CDFs —
        // heavily tied data (e.g. Zipf-distributed integers) would
        // otherwise inflate the statistic.
        while i < a.len() && j < b.len() {
            let x = if a[i] <= b[j] { a[i] } else { b[j] };
            while i < a.len() && a[i] == x {
                i += 1;
            }
            while j < b.len() && b[j] == x {
                j += 1;
            }
            let fa = i as f64 / a.len() as f64;
            let fb = j as f64 / b.len() as f64;
            d = d.max((fa - fb).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_sim::rng::fnv1a;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rand_distr::{Distribution, Normal};

    #[test]
    fn observe_is_duplicate_insensitive() {
        let mut s = DistSketch::new(8);
        for _ in 0..100 {
            s.observe(42, 3.0);
        }
        assert_eq!(s.len(), 1);
        assert_eq!(s.values(), vec![3.0]);
    }

    #[test]
    fn capacity_keeps_smallest_hashes() {
        let mut s = DistSketch::new(3);
        for h in [50u64, 10, 40, 20, 30] {
            s.observe(h, h as f64);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.values(), vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn merge_is_commutative_and_idempotent() {
        let mut a = DistSketch::new(4);
        let mut b = DistSketch::new(4);
        for h in [1u64, 5, 9] {
            a.observe(h, h as f64);
        }
        for h in [2u64, 5, 7] {
            b.observe(h, h as f64);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut abb = ab.clone();
        abb.merge(&b);
        assert_eq!(abb, ab, "idempotent merge");
        assert_eq!(ab.len(), 4);
    }

    #[test]
    fn distinct_estimate_tracks_population() {
        let mut s = DistSketch::new(256);
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000u64;
        for _ in 0..n {
            // random 64-bit hashes ≈ distinct items
            s.observe(rng.gen(), 0.0);
        }
        let est = s.distinct_estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.15, "distinct estimate {est} (rel {rel})");
    }

    #[test]
    fn distinct_estimate_exact_below_capacity() {
        let mut s = DistSketch::new(100);
        for h in 0..37u64 {
            s.observe(fnv1a(&h.to_le_bytes()), 1.0);
        }
        assert_eq!(s.distinct_estimate(), 37.0);
    }

    #[test]
    fn quantiles_track_normal_distribution() {
        let mut s = DistSketch::new(2048);
        let mut rng = SmallRng::seed_from_u64(5);
        let dist = Normal::new(100.0, 15.0).unwrap();
        for _ in 0..50_000 {
            s.observe(rng.gen(), dist.sample(&mut rng));
        }
        let median = s.quantile(0.5).unwrap();
        assert!((median - 100.0).abs() < 2.0, "median {median}");
        let p84 = s.quantile(0.8413).unwrap();
        assert!((p84 - 115.0).abs() < 3.0, "p84 {p84} (µ+σ expected)");
    }

    #[test]
    fn ks_distance_small_for_same_distribution_large_for_different() {
        let mut rng = SmallRng::seed_from_u64(6);
        let dist = Normal::new(0.0, 1.0).unwrap();
        let mut s = DistSketch::new(1024);
        for _ in 0..20_000 {
            s.observe(rng.gen(), dist.sample(&mut rng));
        }
        let same: Vec<f64> = (0..5_000).map(|_| dist.sample(&mut rng)).collect();
        let shifted: Vec<f64> = same.iter().map(|v| v + 2.0).collect();
        let d_same = s.ks_distance(&same);
        let d_shift = s.ks_distance(&shifted);
        assert!(d_same < 0.06, "same-distribution KS {d_same}");
        assert!(d_shift > 0.5, "shifted KS {d_shift}");
    }

    #[test]
    fn equi_depth_edges_from_sketch() {
        let mut s = DistSketch::new(512);
        let mut rng = SmallRng::seed_from_u64(7);
        for i in 0..10_000u64 {
            s.observe(rng.gen(), (i % 100) as f64);
        }
        let edges = s.equi_depth_edges(4).unwrap();
        assert_eq!(edges.len(), 3);
        assert!(edges.windows(2).all(|w| w[0] <= w[1]));
        // Uniform 0..100 data: quartile edges near 25/50/75.
        assert!((edges[1] - 50.0).abs() < 8.0, "median edge {}", edges[1]);
        assert!(s.equi_depth_edges(10_000).is_none(), "not enough values");
    }

    #[test]
    fn ks_distance_handles_heavy_ties() {
        // Discrete Zipf-like data: few distinct values, many repeats. A
        // sketch over the same distribution must score a small distance.
        let mut rng = SmallRng::seed_from_u64(12);
        let zipfish = |r: &mut SmallRng| {
            let u: f64 = r.gen::<f64>();
            (1.0 / (u + 0.02)).floor().min(50.0)
        };
        let mut s = DistSketch::new(1024);
        for _ in 0..20_000 {
            s.observe(rng.gen(), zipfish(&mut rng));
        }
        let reference: Vec<f64> = (0..5_000).map(|_| zipfish(&mut rng)).collect();
        let d = s.ks_distance(&reference);
        assert!(d < 0.06, "tied-data KS should be small, got {d}");
    }

    #[test]
    fn empty_sketch_behaviour() {
        let s = DistSketch::new(4);
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.ks_distance(&[1.0]), 1.0);
        assert_eq!(s.distinct_estimate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = DistSketch::new(0);
    }
}
