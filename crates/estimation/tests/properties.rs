//! Property-based tests for the estimation primitives' algebraic laws —
//! the properties that make them safe under epidemic (reordered,
//! duplicated) delivery.

use dd_estimation::{DistSketch, ExtremaEstimator, PushSumState};
use proptest::prelude::*;

fn sketch_from(pairs: &[(u64, f64)], k: usize) -> DistSketch {
    let mut s = DistSketch::new(k);
    for &(h, v) in pairs {
        s.observe(h, v);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sketch merge is commutative, associative and idempotent.
    #[test]
    fn sketch_merge_laws(
        a in prop::collection::vec((any::<u64>(), -100.0f64..100.0), 0..40),
        b in prop::collection::vec((any::<u64>(), -100.0f64..100.0), 0..40),
        c in prop::collection::vec((any::<u64>(), -100.0f64..100.0), 0..40),
        k in 1usize..32,
    ) {
        let (sa, sb, sc) = (sketch_from(&a, k), sketch_from(&b, k), sketch_from(&c, k));
        // commutative
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);
        // associative
        let mut ab_c = ab.clone();
        ab_c.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        // idempotent
        let mut abb = ab.clone();
        abb.merge(&sb);
        prop_assert_eq!(&abb, &ab);
    }

    /// Duplicated observations never change a sketch (replication
    /// tolerance, paper §III-B-1).
    #[test]
    fn sketch_ignores_duplicates(
        items in prop::collection::vec((any::<u64>(), -10.0f64..10.0), 1..30),
        dups in 1usize..5,
        k in 1usize..16,
    ) {
        let once = sketch_from(&items, k);
        let mut many = DistSketch::new(k);
        for _ in 0..dups {
            for &(h, v) in &items {
                many.observe(h, v);
            }
        }
        prop_assert_eq!(once, many);
    }

    /// Extrema merge laws: commutative, idempotent, monotone (estimates
    /// never decrease in information).
    #[test]
    fn extrema_merge_laws(
        a in prop::collection::vec(0.0001f64..10.0, 4..32),
        b_scale in 0.1f64..10.0,
    ) {
        let b: Vec<f64> = a.iter().map(|x| x * b_scale).collect();
        let ea = ExtremaEstimator::from_mins(a.clone());
        let eb = ExtremaEstimator::from_mins(b);
        let mut ab = ea.clone();
        ab.merge(&eb);
        let mut ba = eb.clone();
        ba.merge(&ea);
        prop_assert_eq!(&ab, &ba);
        let mut abb = ab.clone();
        abb.merge(&eb);
        prop_assert_eq!(&abb, &ab);
        // merged estimate ≥ both inputs' estimates (smaller minima ⇒ larger N̂)
        prop_assert!(ab.estimate() >= ea.estimate() - 1e-9);
        prop_assert!(ab.estimate() >= eb.estimate() - 1e-9);
    }

    /// Push-sum conserves mass across arbitrary exchange schedules.
    #[test]
    fn pushsum_mass_conservation(
        values in prop::collection::vec(-1000.0f64..1000.0, 2..12),
        schedule in prop::collection::vec((0usize..12, 0usize..12), 1..100),
    ) {
        let n = values.len();
        let mut states: Vec<PushSumState> =
            values.iter().map(|&v| PushSumState::for_average(v)).collect();
        let total: f64 = values.iter().sum();
        for (i, j) in schedule {
            let (i, j) = (i % n, j % n);
            if i == j {
                continue;
            }
            let (s, w) = states[i].emit_half();
            states[j].absorb(s, w);
        }
        let sum: f64 = states.iter().map(|s| s.mass().0).sum();
        let weight: f64 = states.iter().map(|s| s.mass().1).sum();
        prop_assert!((sum - total).abs() < 1e-6 * total.abs().max(1.0));
        prop_assert!((weight - n as f64).abs() < 1e-9);
    }

    /// The sketch's distinct estimate is exact below capacity.
    #[test]
    fn distinct_exact_below_capacity(
        hashes in prop::collection::hash_set(any::<u64>(), 0..20),
    ) {
        let pairs: Vec<(u64, f64)> = hashes.iter().map(|&h| (h, 0.0)).collect();
        let s = sketch_from(&pairs, 64);
        prop_assert_eq!(s.distinct_estimate(), hashes.len() as f64);
    }
}
