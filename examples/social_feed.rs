//! Social-feed workload: correlated multi-tuple operations end to end
//! (§III-B-1).
//!
//! Runs the same `multi_put`/`multi_get` feed workload against two live
//! clusters — one with tag-collocation sieves, one with uniform (random)
//! placement — and reads the per-operation accounting back from the
//! simulator's metrics. With tag sieves, every post of a feed lands on
//! the same `r` nodes and a `multi_get` is routed to exactly those
//! owners; with random placement the coordinator must fan out to the
//! whole persistent layer for the same answer.
//!
//! ```sh
//! cargo run --release --example social_feed
//! ```

use dd_core::{Cluster, ClusterConfig, Placement, Workload, WorkloadKind};

const FEEDS: u64 = 8;
const BATCHES: usize = 12;
const BATCH: usize = 6;
const REPLICATION: u32 = 3;

struct RunStats {
    tuples_read: usize,
    contacts_mean: f64,
    contacts_max: f64,
    msgs: u64,
}

/// Writes the feed workload through `multi_put`, reads every feed back
/// through `multi_get`, and returns the contact/message accounting.
fn run(config: ClusterConfig, seed: u64) -> RunStats {
    let mut cluster = Cluster::new(config, seed);
    cluster.settle();
    let mut client = cluster.client();
    let mut workload = Workload::new(WorkloadKind::SocialFeed { users: FEEDS }, 7);
    let tags = client.drive_multi_puts(&mut cluster, &mut workload, BATCHES, BATCH);
    cluster.run_for(5_000);
    let tuples_read = client.read_tags(&mut cluster, &tags).iter().map(Vec::len).sum();
    let contacts = cluster.sim.metrics().summary("multi_get.contacted_nodes");
    RunStats {
        tuples_read,
        contacts_mean: contacts.mean,
        contacts_max: contacts.max,
        msgs: cluster.sim.metrics().counter("multi_get.msgs"),
    }
}

fn main() {
    let config = ClusterConfig::small().persist_n(32).replication(REPLICATION);
    let tagged = run(config.clone().placement(Placement::TagCollocation), 2026);
    let uniform = run(config.clone().placement(Placement::Uniform), 2026);

    println!(
        "{BATCHES} multi_put batches of {BATCH} posts across {FEEDS} feeds, \
         {} persist nodes (r = {REPLICATION})",
        config.persist_n
    );
    println!("multi_get accounting (persist nodes contacted per feed read):");
    println!(
        "  tag sieves (collocated):  mean {:>5.1}  max {:>5.1}  msgs {:>4}  tuples {}",
        tagged.contacts_mean, tagged.contacts_max, tagged.msgs, tagged.tuples_read
    );
    println!(
        "  uniform (random):         mean {:>5.1}  max {:>5.1}  msgs {:>4}  tuples {}",
        uniform.contacts_mean, uniform.contacts_max, uniform.msgs, uniform.tuples_read
    );

    assert!(tagged.contacts_max <= f64::from(REPLICATION), "tag routing contacts at most r nodes");
    assert!(uniform.contacts_mean > tagged.contacts_mean, "random placement must fan out further");
    assert_eq!(tagged.tuples_read, BATCHES * BATCH, "every post is read back");

    println!(
        "\nreading one feed touches {:.0} nodes with tag sieves vs {:.0} without — \
         the paper's §III-B-1 collocation win, measured on the wire.",
        tagged.contacts_mean, uniform.contacts_mean
    );
}
