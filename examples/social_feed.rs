//! Social-feed workload: correlation-aware placement (§III-B-1).
//!
//! Stores posts tagged by feed. With tag sieves, all posts of a feed
//! collocate on the same r nodes, so reading a feed touches r nodes
//! instead of scattering across the cluster — the paper's collocation
//! argument, shown with its own workload.
//!
//! ```sh
//! cargo run --release --example social_feed
//! ```

use dd_core::{SieveSpec, Workload, WorkloadKind};
use dd_sieve::ItemMeta;
use std::collections::{HashMap, HashSet};

fn main() {
    let nodes = 50u64;
    let users = 20u64;
    let posts = 1_000usize;
    let r = 3u32;

    let mut workload = Workload::new(WorkloadKind::SocialFeed { users }, 2026);
    let ops = workload.take_puts(posts);

    // Tag sieves: posts of one feed land on the same r nodes.
    let tag_sieves: Vec<SieveSpec> =
        (0..nodes).map(|s| SieveSpec::Tag { slot: s, slots: nodes, r }).collect();
    // Plain range sieves: placement by key hash only.
    let key_sieves: Vec<SieveSpec> =
        (0..nodes).map(|i| SieveSpec::default_for(i, nodes, r)).collect();

    let owners = |sieves: &[SieveSpec], item: &ItemMeta| -> Vec<u64> {
        sieves
            .iter()
            .enumerate()
            .filter(|(_, s)| s.accepts(item))
            .map(|(i, _)| i as u64)
            .collect()
    };

    let mut feed_nodes_tag: HashMap<String, HashSet<u64>> = HashMap::new();
    let mut feed_nodes_key: HashMap<String, HashSet<u64>> = HashMap::new();
    let mut load = vec![0u32; nodes as usize];
    for op in &ops {
        let tag = op.tag.clone().expect("social feed posts are tagged");
        let item = ItemMeta::from_key(op.key.as_bytes())
            .with_attr(op.attr.unwrap())
            .with_tag(tag.as_bytes());
        for n in owners(&tag_sieves, &item) {
            feed_nodes_tag.entry(tag.clone()).or_default().insert(n);
            load[n as usize] += 1;
        }
        for n in owners(&key_sieves, &item) {
            feed_nodes_key.entry(tag.clone()).or_default().insert(n);
        }
    }

    let avg = |m: &HashMap<String, HashSet<u64>>| {
        m.values().map(|s| s.len() as f64).sum::<f64>() / m.len() as f64
    };
    println!("{posts} posts across {users} feeds on {nodes} nodes (r = {r})");
    println!("nodes touched per feed read:");
    println!("  tag sieves (collocated):   {:>6.1}", avg(&feed_nodes_tag));
    println!("  key sieves (scattered):    {:>6.1}", avg(&feed_nodes_key));

    let max = *load.iter().max().unwrap();
    let mean = load.iter().map(|&l| f64::from(l)).sum::<f64>() / nodes as f64;
    println!(
        "tag-sieve load balance: mean {:.1} posts/node, max {} ({}x mean)",
        mean,
        max,
        (f64::from(max) / mean * 10.0).round() / 10.0
    );

    assert!(avg(&feed_nodes_tag) <= f64::from(r), "collocation bound");
    println!(
        "\nreading one feed touches {} nodes with tag sieves vs {} without — \
         the paper's §III-B-1 collocation win.",
        avg(&feed_nodes_tag),
        avg(&feed_nodes_key).round()
    );
}
