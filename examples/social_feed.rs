//! Social-feed workload: correlated multi-tuple operations end to end
//! (§III-B-1).
//!
//! Runs the same `multi_put`/`multi_get` feed workload against two live
//! clusters — one with tag-collocation sieves, one with uniform (random)
//! placement — and reads the per-operation accounting back from the
//! simulator's metrics. With tag sieves, every post of a feed lands on
//! the same `r` nodes and a `multi_get` is routed to exactly those
//! owners; with random placement the coordinator must fan out to the
//! whole persistent layer for the same answer.
//!
//! ```sh
//! cargo run --release --example social_feed
//! ```

use dd_core::{Cluster, ClusterConfig, OpMix, Phase, Placement, Scenario, WorkloadKind};

const FEEDS: u64 = 8;
const BATCHES: u64 = 12;
const BATCH: usize = 6;
const MGETS: u64 = 16;
const REPLICATION: u32 = 3;

struct RunStats {
    tuples_read: u64,
    contacts_mean: f64,
    contacts_max: f64,
    msgs: u64,
}

/// One declarative scenario: write the feed workload through `multi_put`
/// batches, settle, read feeds back through `multi_get` — the same
/// scenario (and seed) for both placements, so only routing differs.
fn run(config: ClusterConfig, seed: u64) -> RunStats {
    let mut cluster = Cluster::new(config, seed);
    cluster.settle();
    let scenario = Scenario::new("social-feed", WorkloadKind::SocialFeed { users: FEEDS }, 7)
        .phase(
            Phase::new("mput", 6_000)
                .mix(OpMix::multi_puts(BATCH))
                .sessions(1)
                .depth(1)
                .ops(BATCHES),
        )
        .phase(Phase::new("settle", 5_000))
        .phase(Phase::new("mget", 6_000).mix(OpMix::multi_gets()).sessions(1).depth(1).ops(MGETS));
    let report = cluster.run_scenario(&scenario);
    assert_eq!(report.availability(), 1.0, "every multi-op completes");
    let mget = &report.phases[2];
    RunStats {
        tuples_read: mget.tuples_read,
        contacts_mean: mget.contacts_mean,
        contacts_max: mget.contacts_max,
        msgs: cluster.sim.metrics().counter("multi_get.msgs"),
    }
}

fn main() {
    let config = ClusterConfig::small().persist_n(32).replication(REPLICATION);
    let tagged = run(config.clone().placement(Placement::TagCollocation), 2026);
    let uniform = run(config.clone().placement(Placement::Uniform), 2026);

    println!(
        "{BATCHES} multi_put batches of {BATCH} posts across {FEEDS} feeds, \
         {MGETS} multi_get feed reads, {} persist nodes (r = {REPLICATION})",
        config.persist_n
    );
    println!("multi_get accounting (persist nodes contacted per feed read):");
    println!(
        "  tag sieves (collocated):  mean {:>5.1}  max {:>5.1}  msgs {:>4}  tuples {}",
        tagged.contacts_mean, tagged.contacts_max, tagged.msgs, tagged.tuples_read
    );
    println!(
        "  uniform (random):         mean {:>5.1}  max {:>5.1}  msgs {:>4}  tuples {}",
        uniform.contacts_mean, uniform.contacts_max, uniform.msgs, uniform.tuples_read
    );

    assert!(tagged.contacts_max <= f64::from(REPLICATION), "tag routing contacts at most r nodes");
    assert!(uniform.contacts_mean > tagged.contacts_mean, "random placement must fan out further");
    assert!(tagged.tuples_read > 0, "feed reads return posts");
    // Uniform r/N sieves miss ~e^-r of tuples entirely (the coverage
    // trade-off of E3), so random placement may read back slightly fewer
    // posts from the very same scenario — never more.
    assert!(
        uniform.tuples_read <= tagged.tuples_read,
        "collocated feeds are at least as complete: {} vs {}",
        uniform.tuples_read,
        tagged.tuples_read
    );

    println!(
        "\nreading one feed touches {:.0} nodes with tag sieves vs {:.0} without — \
         the paper's §III-B-1 collocation win, measured on the wire.",
        tagged.contacts_mean, uniform.contacts_mean
    );
}
