//! Traced drill: run a dependability scenario with the tracing plane on,
//! read the critical-path attribution, and export a Chrome trace.
//!
//! Act 1 runs the churn-storm drill traced: every client operation is
//! recorded as a span tree (client submit → coordinator hops → per-replica
//! waits → persist stores), and the attached [`dd_core::TraceReport`]
//! breaks the run's critical-path time down per hop and digests the
//! slowest ops. The storm's tail op must be pinned on a wait for a
//! churned replica that never answered — the per-hop evidence a hedging
//! policy would key off.
//!
//! Act 2 exports the whole run as Chrome trace-event JSON. Open the file
//! in `chrome://tracing` or <https://ui.perfetto.dev>: each traced op is
//! one track (tid = op id) on its node's process row, and the long bars
//! under a churned node are the unanswered waits from act 1.
//!
//! ```sh
//! cargo run --release --example traced_drill
//! ```

use dd_core::scenario::library;
use dd_core::{Cluster, ClusterConfig, Placement};

fn main() {
    // Act 1 — the stock churn-storm drill, traced.
    let config =
        ClusterConfig::small().persist_n(36).replication(3).placement(Placement::TagCollocation);
    let mut cluster = Cluster::new(config, 2_027);
    cluster.settle();
    let report = cluster.run_scenario(&library::churn_storm(2_027).traced());
    let trace = report.trace.as_ref().expect("traced run attaches a trace report");

    println!(
        "scenario `{}` — {} ops, availability {:.4}, p50/p95/p99 latency \
         {:.0}/{:.0}/{:.0} ticks\n",
        report.name,
        report.issued(),
        report.availability(),
        report.latency_p50,
        report.latency_p95,
        report.latency_p99,
    );
    println!("{}", trace.summary());

    // The slowest op is the p95+ tail the summary explains: its critical
    // path walks from submission to completion, and the dominant hop —
    // the one segment whose removal would have sped the op up most — must
    // be a wait that was never answered (the churned replica).
    let tail = trace.slowest.first().expect("slowest-ops digest");
    let dominant = tail.dominant().expect("critical path");
    println!(
        "tail op {} spent {}/{} ticks in `{}` waiting on node {} — {}",
        tail.op,
        dominant.ticks(),
        tail.ticks,
        dominant.label,
        dominant.node,
        if dominant.answered { "answered late" } else { "never answered" },
    );
    assert!(!dominant.answered, "the storm tail must be pinned on an unanswered wait");

    // Act 2 — export for chrome://tracing / Perfetto.
    let json = trace.set.to_chrome_json();
    let path = std::env::temp_dir().join("dd_traced_drill.json");
    std::fs::write(&path, &json).expect("write chrome trace");
    println!("\nwrote {} traces ({} bytes) to {}", trace.ops, json.len(), path.display());
    println!("open chrome://tracing (or https://ui.perfetto.dev) and load the file.");
}
