//! Churn and availability: the paper's core scenario (§I "churn becomes
//! the norm rather than the exception").
//!
//! Writes a dataset, then subjects the persistent layer to heavy transient
//! churn while measuring read availability and replica counts — with the
//! epidemic repair protocol keeping redundancy up.
//!
//! ```sh
//! cargo run --release --example churn_availability
//! ```

use dd_core::{Cluster, ClusterConfig, Key};
use dd_sim::churn::{ChurnEvent, ChurnModel, ChurnSchedule};
use dd_sim::{NodeId, Time};

fn main() {
    let persist_n = 40u64;
    let keys = 60u32;
    let mut cluster = Cluster::new(ClusterConfig::small().persist_n(persist_n).replication(3), 7);
    cluster.settle();
    let mut client = cluster.client();

    println!("writing {keys} keys...");
    for i in 0..keys {
        let req = client.put(&mut cluster, format!("doc:{i}"), vec![i as u8], None, None);
        client.recv(&mut cluster, req).expect("write acknowledged");
    }
    cluster.run_for(5_000);

    // 3% of nodes fail per round; mean downtime 4 s; all transient.
    let model = ChurnModel::default().failure_rate(0.03).mean_downtime(4_000).permanent_prob(0.0);
    let horizon = 60_000u64;
    let schedule = ChurnSchedule::generate(&model, persist_n, Time(horizon), 99);
    println!("churn schedule: {} events over {horizon} ticks", schedule.len());
    let offset = cluster.soft_ids().len() as u64;
    for ev in schedule.events() {
        let id = NodeId(ev.node().0 + offset);
        match ev {
            ChurnEvent::Down(t, _) | ChurnEvent::Leave(t, _) => cluster.sim.schedule_down(*t, id),
            ChurnEvent::Up(t, _) => cluster.sim.schedule_up(*t, id),
        }
    }

    // Sample availability while the storm rages.
    println!("{:>8} {:>8} {:>14} {:>16}", "time", "alive", "mean_replicas", "reads_ok/20");
    for step in 1..=6 {
        cluster.run_for(horizon / 6);
        let alive = cluster.persist_ids().iter().filter(|&&id| cluster.sim.is_alive(id)).count();
        let mean_replicas: f64 = (0..keys)
            .map(|i| cluster.replica_count(&Key::from(format!("doc:{i}").as_str())) as f64)
            .sum::<f64>()
            / f64::from(keys);
        let mut ok = 0;
        for i in 0..20 {
            let r = client.get(&mut cluster, format!("doc:{}", i * 3));
            if matches!(client.recv(&mut cluster, r), Ok(Some(_))) {
                ok += 1;
            }
        }
        println!("{:>8} {:>8} {:>14.2} {:>16}", step * horizon / 6, alive, mean_replicas, ok);
    }

    cluster.run_for(10_000);
    let recovered: usize = (0..keys)
        .filter(|&i| cluster.replica_count(&Key::from(format!("doc:{i}").as_str())) >= 3)
        .count();
    println!(
        "after the storm: {recovered}/{keys} keys at full replication; \
         repair recovered {} replicas",
        cluster.sim.metrics().counter("repair.recovered")
    );
}
