//! Outage drill: the paper's dependability story as one declarative
//! [`Scenario`] — no imperative driver code, no escape hatches.
//!
//! Act 1 runs the stock partition+heal drill from the scenario library:
//! load a social-feed dataset, partition half the persistent layer away
//! mid-serve, heal, repair, read everything back. Act 2 composes a
//! custom compound outage from the same vocabulary: a churn storm, a
//! loss spike, a soft-layer wipe *and* rebuild — and still ends with the
//! full dataset served.
//!
//! ```sh
//! cargo run --release --example outage_drill
//! ```

use dd_core::scenario::library;
use dd_core::{
    Cluster, ClusterConfig, EnvChange, Fault, OpMix, Phase, Scenario, ScenarioReport, Tier,
    WorkloadKind,
};
use dd_sim::churn::ChurnModel;

fn print_report(report: &ScenarioReport) {
    println!(
        "\nscenario `{}` — {} ops, {} msgs, {} ticks",
        report.name,
        report.issued(),
        report.msgs,
        report.ticks
    );
    println!(
        "{:>10} {:>7} {:>6} {:>6} {:>6} {:>6} {:>7} {:>7} {:>7}",
        "phase", "issued", "ok", "t/o", "noent", "found", "p50", "p95", "p99"
    );
    for p in &report.phases {
        println!(
            "{:>10} {:>7} {:>6} {:>6} {:>6} {:>6} {:>7.0} {:>7.0} {:>7.0}",
            p.name,
            p.issued,
            p.ok,
            p.errors.timeouts,
            p.errors.no_entry,
            p.reads_found,
            p.latency_p50,
            p.latency_p95,
            p.latency_p99
        );
    }
    println!("availability {:.4}, staleness {:.4}", report.availability(), report.staleness());
}

fn main() {
    // Act 1 — the stock partition+heal drill.
    let mut cluster = Cluster::new(ClusterConfig::small().persist_n(32).replication(3), 7);
    cluster.settle();
    let report = cluster.run_scenario(&library::partition_heal(21));
    print_report(&report);
    let readback = report.phases.last().expect("drill ends with read-back");
    assert!(readback.availability() >= 0.99, "healed cluster serves the dataset");
    assert!(readback.reads_found > 0);

    // Act 2 — a compound outage composed from the same vocabulary:
    // churn storm + loss spike while serving, then catastrophic
    // soft-layer loss, reconstruction, and read-back.
    let storm = ChurnModel::default().failure_rate(0.06).mean_downtime(3_000).permanent_prob(0.0);
    let compound = Scenario::new("compound-outage", WorkloadKind::SocialFeed { users: 6 }, 33)
        .phase(
            Phase::new("load", 6_000)
                .mix(OpMix::idle().put(3).multi_put(1).batch(4))
                .sessions(3)
                .depth(8)
                .ops(240),
        )
        .phase(
            Phase::new("storm", 10_000)
                .mix(OpMix::idle().put(1).get(5).multi_get(1))
                .sessions(4)
                .depth(8)
                .ops(400),
        )
        .phase(Phase::new("repair", 8_000))
        .phase(
            Phase::new("readback", 8_000)
                .mix(OpMix::idle().get(4).multi_get(1))
                .sessions(2)
                .depth(4)
                .ops(160),
        )
        .fault(6_000, Fault::ChurnBurst { tier: Tier::Persist, model: storm, span: 10_000 })
        .fault(16_000, Fault::WipeSoftLayer)
        .fault(16_000, Fault::RebuildSoftLayer)
        .env(8_000, EnvChange::DropProb(0.02))
        .env(16_000, EnvChange::DropProb(0.0));
    let mut cluster = Cluster::new(ClusterConfig::small().persist_n(32).replication(3), 8);
    cluster.settle();
    let report = cluster.run_scenario(&compound);
    print_report(&report);
    let readback = report.phases.last().expect("read-back phase");
    assert!(
        readback.availability() >= 0.99,
        "after churn, loss, wipe and rebuild the dataset is still served"
    );
    println!(
        "\nthe whole drill — workload phases, fault schedule, environment \
         timeline — was one declarative value; replaying it with the same \
         seeds reproduces this output byte for byte."
    );
}
