//! Quickstart: bring up a DataDroplets cluster, open a client session,
//! write, read, delete.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dd_core::{Cluster, ClusterConfig};

fn main() {
    // 4 soft-state nodes coordinate; 32 persistent nodes store tuples
    // disseminated epidemically and retained by local sieves (r = 3).
    let mut cluster = Cluster::new(ClusterConfig::small(), 42);
    cluster.settle();
    println!(
        "cluster up: {} soft nodes, {} persistent nodes",
        cluster.soft_ids().len(),
        cluster.persist_ids().len()
    );

    // All traffic flows through a client session: ops return typed
    // Pending handles; recv drives virtual time until completion.
    let mut client = cluster.client();

    // Write a tuple with a numeric attribute (age) — attributes power
    // range scans and distribution-aware placement.
    let w = client.put(&mut cluster, "user:alice", b"alice@example.org".to_vec(), Some(31.0), None);
    let put = client.recv(&mut cluster, w).expect("write acknowledged");
    println!("put user:alice -> version {} ({} storage acks)", put.version, put.acks);

    // Read it back: the soft layer knows the latest version, so no quorum
    // is needed (paper §II). Ok(None) would mean "no such key" — a
    // successful read of nothing, distinct from Err(OpError::Timeout).
    let r = client.get(&mut cluster, "user:alice");
    let tuple = client.recv(&mut cluster, r).expect("read completed").expect("key found");
    println!(
        "get user:alice -> {:?} (version {}, attr {:?})",
        String::from_utf8_lossy(&tuple.value),
        tuple.version,
        tuple.attr
    );

    // Repeat reads hit the soft-layer tuple cache — and pipeline: all
    // three are in flight together before any completion is harvested.
    let reads: Vec<_> = (0..3).map(|_| client.get(&mut cluster, "user:alice")).collect();
    println!("{} cache-warming reads in flight", client.in_flight());
    for r in reads {
        client.recv(&mut cluster, r).expect("read completed");
    }
    println!("cache hits so far: {}", cluster.sim.metrics().counter("soft.cache_hits"));

    // Deletes are versioned tombstones — later reads see nothing.
    let d = client.delete(&mut cluster, "user:alice");
    client.recv(&mut cluster, d).expect("delete ordered");
    cluster.run_for(2_000);
    let r = client.get(&mut cluster, "user:alice");
    assert!(client.recv(&mut cluster, r).expect("read completed").is_none());
    println!("deleted user:alice; subsequent read found nothing");

    println!(
        "total messages: {}, stored replicas: {}",
        cluster.sim.metrics().counter("net.sent"),
        cluster.sim.metrics().counter("persist.stored")
    );
}
