//! Quickstart: bring up a DataDroplets cluster, write, read, delete.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dd_core::{Cluster, ClusterConfig};

fn main() {
    // 4 soft-state nodes coordinate; 32 persistent nodes store tuples
    // disseminated epidemically and retained by local sieves (r = 3).
    let mut cluster = Cluster::new(ClusterConfig::small(), 42);
    cluster.settle();
    println!(
        "cluster up: {} soft nodes, {} persistent nodes",
        cluster.soft_ids().len(),
        cluster.persist_ids().len()
    );

    // Write a tuple with a numeric attribute (age) — attributes power
    // range scans and distribution-aware placement.
    let req = cluster.put("user:alice", b"alice@example.org".to_vec(), Some(31.0), None);
    let put = cluster.wait_put(req).expect("write acknowledged");
    println!("put user:alice -> version {} ({} storage acks)", put.version, put.acks);

    // Read it back: the soft layer knows the latest version, so no quorum
    // is needed (paper §II).
    let req = cluster.get("user:alice");
    let tuple = cluster.wait_get(req).expect("read completed").expect("key found");
    println!(
        "get user:alice -> {:?} (version {}, attr {:?})",
        String::from_utf8_lossy(&tuple.value),
        tuple.version,
        tuple.attr
    );

    // Repeat reads hit the soft-layer tuple cache.
    for _ in 0..3 {
        let req = cluster.get("user:alice");
        cluster.wait_get(req).expect("read completed");
    }
    println!(
        "cache hits so far: {}",
        cluster.sim.metrics().counter("soft.cache_hits")
    );

    // Deletes are versioned tombstones — later reads see nothing.
    let req = cluster.delete("user:alice");
    cluster.wait_put(req).expect("delete ordered");
    cluster.run_for(2_000);
    let req = cluster.get("user:alice");
    assert!(cluster.wait_get(req).expect("read completed").is_none());
    println!("deleted user:alice; subsequent read found nothing");

    println!(
        "total messages: {}, stored replicas: {}",
        cluster.sim.metrics().counter("net.sent"),
        cluster.sim.metrics().counter("persist.stored")
    );
}
