//! Telemetry drill: run a dependability scenario with the telemetry plane
//! on, read the detector verdicts, and export the series for dashboards.
//!
//! Act 1 runs the churn-storm drill instrumented: a sampler sweeps the
//! cluster every few hundred virtual ticks, recording per-node gauges
//! (event-queue depth, in-flight messages, pending ops, store occupancy)
//! and counter rates (repair rounds, deltas recovered) into bounded time
//! series, and the attached [`dd_core::TelemetryReport`] summarises each
//! series and runs the leak / backlog / repair-divergence detectors. A
//! healthy storm must come out clean.
//!
//! Act 2 seeds the PR 3 regression — completion logs that never evict —
//! reruns the same drill, and shows the monotonic-growth detector pinning
//! the leak on exactly `cluster.completion_backlog`.
//!
//! Act 3 exports the healthy run in both wire formats: Prometheus text
//! exposition (last value per series, ready for a scrape endpoint) and a
//! full CSV sample dump for offline plotting.
//!
//! ```sh
//! cargo run --release --example telemetry_drill
//! ```

use dd_core::cluster::DropletNode;
use dd_core::scenario::library;
use dd_core::{Cluster, ClusterConfig, Detector, Placement};

fn cluster() -> Cluster {
    let config =
        ClusterConfig::small().persist_n(36).replication(3).placement(Placement::TagCollocation);
    let mut c = Cluster::new(config, 2_027);
    c.settle();
    c
}

fn main() {
    // Act 1 — the stock churn-storm drill, instrumented.
    let mut healthy = cluster();
    let report = healthy.run_scenario(&library::churn_storm(2_027).instrumented());
    let telemetry = report.telemetry.as_ref().expect("instrumented run attaches telemetry");

    println!("{report}\n");
    println!("{}", telemetry.summary());
    assert!(telemetry.is_clean(), "a healthy storm must pass every detector");

    // Act 2 — the seeded regression: flip every soft node's completion
    // logs to the unbounded, never-evicting shape of the PR 3 bug. The
    // run's answers are unchanged — only the backlog gauge grows without
    // bound, and the leak detector must say exactly that.
    let mut leaky = cluster();
    for id in leaky.soft_ids().to_vec() {
        leaky
            .sim
            .node_mut(id)
            .and_then(DropletNode::as_soft_mut)
            .expect("soft node")
            .seed_completion_leak();
    }
    let report = leaky.run_scenario(&library::churn_storm(2_027).instrumented());
    let verdict = report.telemetry.as_ref().expect("telemetry attached");
    println!("seeded regression verdicts:");
    for finding in &verdict.findings {
        println!("  detector {finding}");
    }
    let flagged: Vec<&str> =
        verdict.findings_of(Detector::Leak).map(|f| f.series.as_str()).collect();
    assert_eq!(flagged, vec!["cluster.completion_backlog"], "leak pinned on the backlog gauge");

    // Act 3 — export the healthy run for dashboards.
    let prom = telemetry.data.to_prometheus();
    let csv = telemetry.data.to_csv();
    let prom_path = std::env::temp_dir().join("dd_telemetry_drill.prom");
    let csv_path = std::env::temp_dir().join("dd_telemetry_drill.csv");
    std::fs::write(&prom_path, &prom).expect("write prometheus exposition");
    std::fs::write(&csv_path, &csv).expect("write csv dump");
    println!(
        "\nwrote {} series ({} bytes) to {}",
        telemetry.summaries.len(),
        prom.len(),
        prom_path.display()
    );
    println!("wrote {} samples ({} bytes) to {}", telemetry.samples, csv.len(), csv_path.display());
    println!("point a Prometheus file exporter at the .prom file, or plot the CSV.");
}
