//! Real-concurrency demo: the same epidemic broadcast protocol that runs
//! in the deterministic simulator, executing over OS threads and channels
//! (the repo's stand-in for a tokio deployment).
//!
//! ```sh
//! cargo run --release --example threaded_gossip
//! ```

use dd_epidemic::push::{PushConfig, Rumor, RumorId};
use dd_epidemic::{BroadcastConfig, BroadcastMsg, BroadcastNode};
use dd_membership::MembershipOracle;
use dd_sim::runtime::{sleep_ms, Runtime};
use dd_sim::NodeId;
use std::time::Instant;

fn main() {
    let n = 64u64;
    let fanout = dd_epidemic::required_fanout(n, 0.999);
    println!("spawning {n} OS threads, fanout {fanout} (= ln {n} + c)...");

    let config = BroadcastConfig {
        push: PushConfig { fanout, ..PushConfig::default() },
        anti_entropy_period: None,
    };
    let nodes: Vec<(NodeId, BroadcastNode<MembershipOracle, String>)> = (0..n)
        .map(|i| (NodeId(i), BroadcastNode::new(MembershipOracle::dense(NodeId(i), n), config)))
        .collect();

    let started = Instant::now();
    let rt = Runtime::spawn(nodes, 2026);
    rt.inject(
        NodeId(999),
        NodeId(0),
        BroadcastMsg::Rumor(Rumor {
            id: RumorId(1),
            hops: 0,
            payload: "wall-clock epidemic".to_owned(),
        }),
    );
    sleep_ms(300); // let the rumor spread across threads
    let (states, metrics) = rt.shutdown();

    let reached = states.iter().filter(|(_, node)| node.has(RumorId(1))).count();
    println!("reached {reached}/{n} nodes in {:?} wall time", started.elapsed());
    println!(
        "messages sent {} / delivered {}",
        metrics.counter("net.sent"),
        metrics.counter("net.delivered")
    );
    assert_eq!(reached as u64, n, "atomic infection on real threads");
}
