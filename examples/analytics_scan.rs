//! Analytics over the store: range scans and aggregates (§III-B-2, §III-C).
//!
//! Loads normally distributed measurements, then answers "which tuples are
//! within one sigma of the mean?" with a range scan and summarises the
//! distribution with the duplicate-tolerant aggregate pipeline.
//!
//! ```sh
//! cargo run --release --example analytics_scan
//! ```

use dd_core::{Cluster, ClusterConfig, Workload, WorkloadKind};

fn main() {
    let mut cluster = Cluster::new(ClusterConfig::small().persist_n(36), 11);
    cluster.settle();
    let mut client = cluster.client();

    let n = 150usize;
    let mut workload = Workload::new(WorkloadKind::NormalAttr { mean: 100.0, std_dev: 15.0 }, 5);
    println!("loading {n} measurements ~ N(100, 15)...");
    // The loader keeps a pipeline of writes outstanding and harvests in
    // bulk — the session plane's answer to bulk ingest.
    let mut truth: Vec<f64> = Vec::new();
    for op in workload.take_puts(n) {
        let attr = op.attr.unwrap();
        truth.push(attr);
        let _ = client.put(&mut cluster, op.key, op.value, Some(attr), None);
        if client.in_flight() >= 32 {
            cluster.pump(50);
            for (req, completion) in client.drain(&mut cluster) {
                assert!(completion.is_ok(), "write {req} failed");
            }
        }
    }
    while client.in_flight() > 0 {
        cluster.pump(50);
        for (req, completion) in client.drain(&mut cluster) {
            assert!(completion.is_ok(), "write {req} failed");
        }
    }
    cluster.run_for(5_000);

    // Range scan: µ ± σ.
    let (lo, hi) = (85.0, 115.0);
    let req = client.scan(&mut cluster, lo, hi);
    let items = client.recv(&mut cluster, req).expect("scan completed");
    let expected = truth.iter().filter(|a| (lo..=hi).contains(a)).count();
    println!(
        "scan [{lo}, {hi}]: {} tuples (oracle says {expected}) — \
         ~68% of a normal population",
        items.len()
    );
    assert_eq!(items.len(), expected);

    // Aggregate: min / max / quantiles, deduplicated across replicas.
    let req = client.aggregate(&mut cluster);
    let agg = client.recv(&mut cluster, req).expect("aggregate completed");
    println!("aggregate over the cluster (replication-deduplicated):");
    println!("  distinct tuples ≈ {:.0}", agg.distinct_estimate());
    println!("  min = {:.1}, max = {:.1}", agg.min, agg.max);
    for q in [0.25, 0.5, 0.75] {
        println!("  p{:02.0} ≈ {:.1}", q * 100.0, agg.quantile(q).unwrap());
    }

    let true_min = truth.iter().copied().fold(f64::INFINITY, f64::min);
    let true_max = truth.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(agg.min, true_min);
    assert_eq!(agg.max, true_max);
    println!("extremes match the oracle exactly (idempotent min/max gossip).");
}
