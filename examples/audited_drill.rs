//! Audited drill: run a stock dependability scenario with the audit
//! plane on, read the verdict, and learn to read a violation witness.
//!
//! Act 1 runs the partition+heal drill audited: every client operation is
//! recorded as an invocation/completion pair, the cluster settles after
//! the run, and the checker suite (read-your-writes, monotonic reads,
//! tombstone safety, multi-op atomicity, convergence) judges the history.
//! The drill must uphold every safety guarantee; durability warnings
//! (acked writes whose replicas were all partitioned away) are reported.
//!
//! Act 2 shows what a violation looks like: a recorded history is
//! deliberately corrupted — a session's read is rewound to a version
//! older than the write it already saw acknowledged — and the checker's
//! structured verdict, witness sub-history included, is printed.
//!
//! ```sh
//! cargo run --release --example audited_drill
//! ```

use dd_core::scenario::library;
use dd_core::{Cluster, ClusterConfig, History, Placement, Violation};

fn main() {
    // Act 1 — the stock partition+heal drill, audited.
    let config =
        ClusterConfig::small().persist_n(32).replication(3).placement(Placement::TagCollocation);
    let mut cluster = Cluster::new(config, 7);
    cluster.settle();
    let report = cluster.run_scenario(&library::partition_heal(21).audited());
    let audit = report.audit.as_ref().expect("audited run attaches a verdict");

    println!(
        "scenario `{}` — {} ops, availability {:.4}",
        report.name,
        report.issued(),
        report.availability()
    );
    println!("{audit}");
    assert!(audit.is_clean(), "the drill must uphold every safety guarantee");
    assert_eq!(audit.ops, report.issued(), "every operation was recorded");
    println!(
        "\nall safety guarantees held under the partition; {} durability warning(s) \
         (acked writes whose replica set was fully dark) were reported.",
        audit.warning_count()
    );

    // Act 2 — what a violation looks like. Record a tiny session, then
    // corrupt the history: rewind the read to a version older than the
    // write the session had already seen acknowledged.
    let mut cluster = Cluster::new(ClusterConfig::small(), 8);
    cluster.settle();
    cluster.begin_audit();
    let mut session = cluster.client();
    for round in 1..=2u8 {
        let w = session.put(&mut cluster, "demo", vec![round], None, None);
        session.recv(&mut cluster, w).expect("write ordered");
    }
    let r = session.get(&mut cluster, "demo");
    session.recv(&mut cluster, r).expect("read completes").expect("found");
    let history = cluster.end_audit().expect("recorder installed");
    assert!(dd_audit::check(&history, &cluster.audit_snapshot()).is_clean());

    let mut ops = history.ops().to_vec();
    let read = ops.len() - 1;
    ops[read].outcome = Some(dd_audit::Outcome::Read { version: Some(dd_dht::Version(1)) });
    let verdict = dd_audit::check_read_your_writes(&History::from_ops(ops));
    println!("\ncorrupted replay: {} violation(s)", verdict.len());
    let Some(Violation::ReadYourWrites { session, key, acked, read, witness }) = verdict.first()
    else {
        panic!("the corruption must be caught as a read-your-writes violation");
    };
    println!(
        "  [read-your-writes] session {session} read `{key}`@{read:?} after \
         harvesting an ack for @{acked:?}"
    );
    println!("  witness sub-history (the ops proving it):");
    for op in witness {
        println!(
            "    req {} @t{}..{}: {:?} -> {:?}",
            op.req,
            op.invoked,
            op.completed.expect("resolved"),
            op.desc,
            op.outcome.as_ref().expect("resolved")
        );
    }
}
