//! # DataDroplets — umbrella crate
//!
//! Re-exports the whole workspace implementing *"An epidemic approach to
//! dependable key-value substrates"* (Matos, Vilaça, Pereira, Oliveira —
//! DSN 2011): a two-layer key-value store whose persistent layer relies on
//! epidemic dissemination, local sieves and gossip-based maintenance instead
//! of a rigid DHT.
//!
//! Most users want [`dd_core`]'s [`dd_core::Cluster`] API — including the
//! declarative scenario plane ([`dd_core::Scenario`] /
//! [`dd_core::Cluster::run_scenario`]) that drives whole experiments; the
//! lower-level crates are re-exported for protocol-level experimentation.
//! See the repository `README.md` for the workspace map, build
//! instructions and the experiment catalogue (E1–E20 under
//! `crates/bench/benches/`).

pub use dd_audit as audit;
pub use dd_core as core;
pub use dd_dht as dht;
pub use dd_epidemic as epidemic;
pub use dd_estimation as estimation;
pub use dd_fuzz as fuzz;
pub use dd_membership as membership;
pub use dd_obs as obs;
pub use dd_overlay as overlay;
pub use dd_sieve as sieve;
pub use dd_sim as sim;
pub use dd_trace as trace;
pub use dd_walks as walks;
