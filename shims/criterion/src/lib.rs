//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `criterion_group!` / `criterion_main!` macros,
//! [`Criterion`], [`BenchmarkGroup`] and [`Bencher`] with simple
//! wall-clock timing: each benchmark runs a short warm-up, then a fixed
//! number of timed iterations and prints min/mean per iteration. No
//! statistics, plots or saved baselines — just enough for `cargo bench`
//! to execute the experiment binaries and report rough numbers.

#![forbid(unsafe_code)]

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into(), sample_size: 20 }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("bench/{id}"), 20, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed iterations each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher { samples, durations_ns: Vec::with_capacity(samples) };
    f(&mut bencher);
    if bencher.durations_ns.is_empty() {
        println!("{label}: no measurements");
        return;
    }
    let min = bencher.durations_ns.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = bencher.durations_ns.iter().sum::<f64>() / bencher.durations_ns.len() as f64;
    println!("{label}: min {:>12} mean {:>12}", fmt_ns(min), fmt_ns(mean));
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`]
/// with the code under test.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    durations_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// Collects benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples_and_returns_values() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        let mut runs = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            });
        });
        g.finish();
        assert_eq!(runs, 6, "warm-up + 5 samples");
    }

    #[test]
    fn formats_scale() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with('s'));
    }
}
