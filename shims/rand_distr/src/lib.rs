//! Offline stand-in for the `rand_distr` crate.
//!
//! Implements the distributions this workspace samples — [`Exp`], [`Exp1`],
//! [`Normal`], [`Zipf`] — against the local `rand` shim's
//! [`Distribution`] trait. Inverse-transform and Box–Muller sampling keep
//! the code tiny; all draws are deterministic functions of the RNG stream.

#![forbid(unsafe_code)]

pub use rand::distributions::Distribution;
use rand::RngCore;

/// Draws a uniform value in the open interval `(0, 1)` — safe to take
/// `ln` of without hitting `-inf`.
fn open01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let v = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if v > 0.0 {
            return v;
        }
    }
}

/// Error type shared by every constructor in this shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistError(&'static str);

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for DistError {}

/// The standard exponential distribution `Exp(1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exp1;

impl Distribution<f64> for Exp1 {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -open01(rng).ln()
    }
}

/// The exponential distribution `Exp(lambda)`.
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// `Exp(lambda)`; fails on non-positive or non-finite rates.
    pub fn new(lambda: f64) -> Result<Self, DistError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(DistError("Exp: lambda must be positive and finite"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -open01(rng).ln() / self.lambda
    }
}

/// The normal distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// `N(mean, std_dev²)`; fails on negative or non-finite `std_dev`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistError> {
        if std_dev >= 0.0 && std_dev.is_finite() && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(DistError("Normal: std_dev must be non-negative and finite"))
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; one fresh pair per draw keeps the sampler stateless.
        let u = open01(rng);
        let v = open01(rng);
        let z = (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos();
        self.mean + self.std_dev * z
    }
}

/// The Zipf distribution over `{1, …, n}` with exponent `s`.
///
/// Sampling is inverse-transform over the precomputed CDF (O(log n) per
/// draw); `n` in this workspace is at most a few tens of thousands.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Zipf over `{1, …, n}` with exponent `s`; fails on `n = 0` or a
    /// negative/non-finite exponent.
    pub fn new(n: u64, s: f64) -> Result<Self, DistError> {
        if n == 0 {
            return Err(DistError("Zipf: n must be positive"));
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(DistError("Zipf: exponent must be non-negative and finite"));
        }
        let mut cdf = Vec::with_capacity(usize::try_from(n).unwrap_or(usize::MAX));
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Zipf { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = open01(rng);
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exp1_mean_is_one() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| Exp1.sample(&mut rng)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 1.0).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn exp_mean_is_inverse_rate() {
        let mut rng = SmallRng::seed_from_u64(2);
        let d = Exp::new(4.0).unwrap();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(f64::NAN).is_err());
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = SmallRng::seed_from_u64(3);
        let d = Normal::new(10.0, 2.0).unwrap();
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut rng = SmallRng::seed_from_u64(4);
        let d = Zipf::new(100, 1.1).unwrap();
        let mut counts = [0u32; 100];
        for _ in 0..20_000 {
            let v = d.sample(&mut rng);
            assert!((1.0..=100.0).contains(&v));
            counts[v as usize - 1] += 1;
        }
        assert!(counts[0] > counts[9] && counts[9] > counts[99]);
        assert!(Zipf::new(0, 1.0).is_err());
    }
}
