//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(…)]`, `pat in strategy`
//! bindings, integer/float range strategies, regex-class string
//! strategies, [`prelude::any`], tuple strategies, and
//! [`collection`]`::{vec, hash_set}`. Cases are generated from a seed
//! derived deterministically from the test's module path and name, so
//! failures reproduce exactly; there is no shrinking — the failing case's
//! index and seed are printed instead.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Test configuration and the deterministic case RNG.

    /// Configuration accepted by `#![proptest_config(…)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Same default as real proptest; PROPTEST_CASES overrides, so
            // CI can dial effort up or down without touching code.
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    /// Deterministic generator used to produce test cases (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the RNG for `(test path, case index)` — stable across
        /// runs and machines.
        #[must_use]
        pub fn deterministic(test_path: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in test_path.as_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Rejection sampling to kill modulo bias.
            let zone = u64::MAX - u64::MAX % bound;
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and implementations for ranges, string
    //! patterns and tuples.

    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((u128::from(rng.next_u64()) << 64)
                        | u128::from(rng.next_u64())) % span;
                    ((self.start as i128) + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty strategy range");
                    let span =
                        (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                    let v = ((u128::from(rng.next_u64()) << 64)
                        | u128::from(rng.next_u64())) % span;
                    ((*self.start() as i128) + v as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    // Include the endpoint by widening one ulp's worth.
                    let v = lo + (hi - lo) * rng.unit_f64() as $t;
                    if rng.next_u64() & 0xFFF == 0 { hi } else { v }
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    /// String strategies from a regex-class pattern, e.g.
    /// `"[a-z0-9:/_-]{1,32}"`. Supported: literal characters, `[…]`
    /// classes with ranges, and `{m}` / `{m,n}` repetition.
    impl Strategy for str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let set: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                    + i;
                let class = parse_class(&chars[i + 1..close]);
                i = close + 1;
                class
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("repetition min"),
                        n.trim().parse().expect("repetition max"),
                    ),
                    None => {
                        let m: usize = body.trim().parse().expect("repetition count");
                        (m, m)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(!set.is_empty(), "empty character class in {pattern:?}");
            assert!(min <= max, "bad repetition in {pattern:?}");
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(set[rng.below(set.len() as u64) as usize]);
            }
        }
        out
    }

    fn parse_class(body: &[char]) -> Vec<char> {
        let mut set = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i], body[i + 2]);
                assert!(lo <= hi, "descending class range");
                for c in lo..=hi {
                    set.push(c);
                }
                i += 3;
            } else {
                // `-` as first/last class member is a literal.
                set.push(body[i]);
                i += 1;
            }
        }
        set
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
    }

    /// Strategy returned by [`crate::prelude::any`].
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    /// Types with a canonical whole-domain strategy.
    pub trait ArbitraryValue {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let mag = (rng.unit_f64() * 600.0 - 300.0).exp2();
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies: [`vec()`] and [`hash_set()`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// A size specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max_exclusive - self.min) as u64) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange { min: *r.start(), max_exclusive: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `HashSet`s whose elements come from `element`.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size: size.into() }
    }

    /// See [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = HashSet::with_capacity(target);
            // Duplicates shrink the set; retry generously, then accept what
            // the element domain was able to produce (still ≥ min for every
            // strategy this workspace uses).
            let mut attempts = 0usize;
            let budget = 100 + target * 100;
            while out.len() < target && attempts < budget {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{Any, ArbitraryValue, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Whole-domain strategy for `T`, mirroring `proptest::prelude::any`.
    #[must_use]
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    pub mod prop {
        //! Namespaced re-exports (`prop::collection::vec` etc.).
        pub use crate::collection;
    }
}

/// Defines property tests. See the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| {
                        $(let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut rng,
                        );)+
                        $body
                    }),
                );
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest case {case}/{total} of {name} failed \
                         (rerun is deterministic)",
                        total = config.cases,
                        name = stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn string_pattern_respects_class_and_length() {
        let mut rng = TestRng::deterministic("shim::pattern", 0);
        for case in 0..500 {
            let mut r = TestRng::deterministic("shim::pattern", case);
            let s = Strategy::generate("[a-z0-9:/_-]{1,32}", &mut r);
            assert!(!s.is_empty() && s.len() <= 32, "bad length: {s:?}");
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || ":/_-".contains(c)),
                "bad char in {s:?}"
            );
        }
        // Literal atoms outside classes are kept verbatim.
        let lit = Strategy::generate("ab[0-9]{2}", &mut rng);
        assert!(lit.starts_with("ab") && lit.len() == 4, "{lit:?}");
    }

    #[test]
    fn ranges_stay_in_bounds_and_are_deterministic() {
        for case in 0..200 {
            let mut a = TestRng::deterministic("shim::ranges", case);
            let mut b = TestRng::deterministic("shim::ranges", case);
            let x = Strategy::generate(&(5u64..17), &mut a);
            assert!((5..17).contains(&x));
            assert_eq!(x, Strategy::generate(&(5u64..17), &mut b));
            let f = Strategy::generate(&(-2.0f64..3.0), &mut a);
            assert!((-2.0..3.0).contains(&f));
            let neg = Strategy::generate(&(-8i32..-1), &mut a);
            assert!((-8..-1).contains(&neg));
        }
    }

    #[test]
    fn collections_respect_size_bounds() {
        for case in 0..100 {
            let mut rng = TestRng::deterministic("shim::coll", case);
            let v = Strategy::generate(&prop::collection::vec(0u64..10, 3..8), &mut rng);
            assert!((3..8).contains(&v.len()));
            let s = Strategy::generate(&prop::collection::hash_set(any::<u64>(), 2..20), &mut rng);
            assert!((2..20).contains(&s.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, tuples, mut patterns, trailing comma.
        #[test]
        fn macro_binds_all_forms(
            a in 1u64..10,
            mut v in prop::collection::vec((0u64..5, any::<bool>()), 0..6),
            s in "[a-z]{1,4}",
        ) {
            v.push((a % 5, true));
            prop_assert!((1..10).contains(&a));
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert_eq!(v.last().copied().map(|(x, _)| x), Some(a % 5));
            prop_assert_ne!(v.len(), 0);
        }
    }
}
