//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] here is an `Arc<[u8]>`: cheap clones, immutable contents,
//! `Deref` to `[u8]` — the subset the tuple store relies on. No
//! zero-copy slicing (`slice`, `split_to`); nothing in this workspace
//! needs it yet.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation beyond the shared empty slice).
    #[must_use]
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes { data: Arc::from(v.into_bytes()) }
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == **other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        **self == other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(b"alice".to_vec());
        assert_eq!(a, b"alice".to_vec());
        assert_eq!(a, Bytes::from("alice"));
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn deref_and_clone_share_contents() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(a.to_vec(), b.to_vec());
        assert_eq!(String::from_utf8_lossy(&Bytes::from("hi")), "hi");
    }

    #[test]
    fn debug_escapes_non_printable() {
        let d = format!("{:?}", Bytes::from(vec![0u8, b'a']));
        assert_eq!(d, "b\"\\x00a\"");
    }
}
