//! Offline stand-in for `crossbeam-channel`, backed by `std::sync::mpsc`.
//!
//! The workspace only uses the MPSC subset — [`unbounded`], cloneable
//! [`Sender`]s, and a single receiver per channel doing `recv` /
//! `recv_timeout` — which `std`'s channel implements with identical
//! semantics and error types, so the shim is a pair of re-exports.

#![forbid(unsafe_code)]

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, Sender, TryRecvError};

/// Single receiving endpoint (std's `Receiver`; not cloneable, unlike
/// the real crossbeam type — nothing here fans in to multiple readers).
pub type Receiver<T> = std::sync::mpsc::Receiver<T>;

/// Creates an unbounded channel.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    std::sync::mpsc::channel()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(7).unwrap());
        assert_eq!(rx.recv().unwrap(), 7);
        tx.send(8).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)).unwrap(), 8);
    }

    #[test]
    fn timeout_and_disconnect_errors() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
