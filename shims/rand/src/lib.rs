//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of `rand` 0.8: the
//! [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, [`rngs::SmallRng`]
//! (xoshiro256++), the [`distributions::Standard`] and uniform-range
//! sampling machinery, and [`seq::SliceRandom`]. Determinism matters more
//! than statistical pedigree here: every generator is a pure function of
//! its seed, which is exactly the reproducibility contract the simulator
//! relies on. Swap this out for the real crate by pointing the
//! `[workspace.dependencies]` entry back at the registry.

#![forbid(unsafe_code)]

/// Low-level source of randomness (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value via the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self) < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D>(&mut self, distr: D) -> T
    where
        D: distributions::Distribution<T>,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Draws a uniform value in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Fixed-size seed material.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Stretches one `u64` into full seed material via SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Small, fast, seedable generator — xoshiro256++ (Blackman & Vigna),
    /// the same family the real `SmallRng` uses on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

pub mod distributions {
    //! Sampling distributions (subset of `rand::distributions`).

    use super::{unit_f64, RngCore};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (**self).sample(rng)
        }
    }

    /// The "natural" distribution for each primitive type.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
        }
    }

    pub mod uniform {
        //! Uniform-range sampling.

        use super::super::{unit_f64, RngCore};
        use core::ops::{Range, RangeInclusive};

        /// Types that support uniform sampling from a range.
        pub trait SampleUniform: PartialOrd + Copy {
            /// Uniform draw from `[lo, hi)` (`inclusive = false`) or
            /// `[lo, hi]` (`inclusive = true`).
            fn sample_between<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self;
        }

        macro_rules! uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    #[allow(unused_comparisons)]
                    fn sample_between<R: RngCore + ?Sized>(
                        lo: Self,
                        hi: Self,
                        inclusive: bool,
                        rng: &mut R,
                    ) -> Self {
                        assert!(
                            if inclusive { lo <= hi } else { lo < hi },
                            "cannot sample empty range"
                        );
                        // Span as u128 so `i64::MIN..i64::MAX` cannot overflow.
                        let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                        if span == 0 {
                            // Inclusive range covering the whole domain.
                            return rng.next_u64() as $t;
                        }
                        // Rejection sampling to kill modulo bias.
                        let zone = u128::MAX - u128::MAX % span;
                        loop {
                            let v = (u128::from(rng.next_u64()) << 64)
                                | u128::from(rng.next_u64());
                            if v < zone {
                                return ((lo as i128) + (v % span) as i128) as $t;
                            }
                        }
                    }
                }
            )*};
        }
        uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! uniform_float {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_between<R: RngCore + ?Sized>(
                        lo: Self,
                        hi: Self,
                        _inclusive: bool,
                        rng: &mut R,
                    ) -> Self {
                        assert!(lo <= hi, "cannot sample empty range");
                        lo + (hi - lo) * unit_f64(rng) as $t
                    }
                }
            )*};
        }
        uniform_float!(f32, f64);

        /// Ranges that can produce a uniform sample of `T`.
        pub trait SampleRange<T> {
            /// Draws one value from the range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_between(self.start, self.end, false, rng)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_between(*self.start(), *self.end(), true, rng)
            }
        }
    }
}

pub mod seq {
    //! Slice helpers (subset of `rand::seq`).

    use super::distributions::uniform::SampleUniform;
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Up to `amount` distinct elements in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_between(0, i, true, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_between(0, self.len(), false, rng)])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let mut idx: Vec<usize> = (0..self.len()).collect();
            idx.shuffle(rng);
            idx.truncate(amount);
            idx.into_iter().map(|i| &self[i]).collect::<Vec<_>>().into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Standard};
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(va[0], c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let v: f64 = Standard.sample(&mut rng);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn choose_is_in_slice() {
        let mut rng = SmallRng::seed_from_u64(19);
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
