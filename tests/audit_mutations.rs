//! Mutation tests: the checkers have teeth.
//!
//! A real cluster run is recorded into a [`History`]; the clean baseline
//! checks clean. Then each test corrupts the recorded history (or the
//! replica snapshot) in exactly one way — drops an ack, reorders a
//! session's reads, resurrects a tombstone, tears a batch — and asserts
//! the matching checker reports exactly the injected violation.

use dd_audit::{
    check, check_atomic_visibility, check_convergence, check_monotonic_reads,
    check_read_your_writes, check_tombstone_safety, snapshot_converged, History, Op, OpDesc,
    Outcome, ReplicaTuple, Violation,
};
use dd_core::{Cluster, ClusterConfig, Placement, TupleSpec};
use dd_dht::Version;

/// Drives a real (tag-collocated) cluster through writes, overwrites,
/// feed batches, feed reads, a delete and re-reads — all recorded — and
/// returns the history plus a converged replica snapshot.
fn recorded_fixture() -> (History, Vec<ReplicaTuple>) {
    let mut c = Cluster::new(ClusterConfig::small().placement(Placement::TagCollocation), 4242);
    c.settle();
    c.begin_audit();
    let mut writer = c.client();
    let mut reader = c.client();

    // Two versions of "k", read back by both sessions.
    let w = writer.put(&mut c, "k", b"v1".to_vec(), None, None);
    writer.recv(&mut c, w).expect("v1 ordered");
    let w = writer.put(&mut c, "k", b"v2".to_vec(), None, None);
    writer.recv(&mut c, w).expect("v2 ordered");
    c.run_for(2_000);
    for session in [&mut writer, &mut reader] {
        for _ in 0..2 {
            let r = session.get(&mut c, "k");
            let got = session.recv(&mut c, r).expect("read completes").expect("found");
            assert_eq!(got.version, Version(2));
        }
    }

    // A tagged batch, fully visible in two complete feed reads.
    let batch: Vec<TupleSpec> = ["a", "b", "c"]
        .iter()
        .enumerate()
        .map(|(i, k)| TupleSpec::new(*k, vec![i as u8], Some(i as f64), Some("feed:x")))
        .collect();
    let w = writer.multi_put(&mut c, batch);
    assert_eq!(writer.recv(&mut c, w).expect("batch ordered").items, 3);
    c.run_for(4_000);
    for _ in 0..2 {
        let r = reader.multi_get(&mut c, "feed:x");
        let feed = reader.recv(&mut c, r).expect("feed read");
        assert_eq!(feed.len(), 3, "batch fully visible");
        assert!(feed.complete);
    }

    // Delete "k"; both sessions observe the tombstone.
    let d = writer.delete(&mut c, "k");
    assert_eq!(writer.recv(&mut c, d).expect("delete ordered").version, Version(3));
    c.run_for(3_000);
    for session in [&mut writer, &mut reader] {
        let r = session.get(&mut c, "k");
        assert_eq!(session.recv(&mut c, r), Ok(None), "deleted key reads absent");
    }

    let history = c.end_audit().expect("recorder installed");
    // Settle until every key's live replicas agree.
    for _ in 0..32 {
        if snapshot_converged(&c.audit_snapshot()) {
            break;
        }
        c.settle();
    }
    let snapshot = c.audit_snapshot();
    assert!(snapshot_converged(&snapshot), "fixture converged");
    (history, snapshot)
}

/// Index of the `n`-th op matching a predicate.
fn find_op(h: &History, n: usize, pred: impl Fn(&Op) -> bool) -> usize {
    h.ops()
        .iter()
        .enumerate()
        .filter(|(_, op)| pred(op))
        .map(|(i, _)| i)
        .nth(n)
        .expect("fixture op present")
}

fn is_get_of(op: &Op, key: &str) -> bool {
    matches!(&op.desc, OpDesc::Get { key: k } if k == key)
}

fn is_mget(op: &Op) -> bool {
    matches!(&op.desc, OpDesc::MultiGet { .. })
}

#[test]
fn uncorrupted_fixture_checks_clean() {
    let (history, snapshot) = recorded_fixture();
    let report = check(&history, &snapshot);
    assert!(report.violations.is_empty(), "baseline must be spotless:\n{report}");
    assert!(report.ops >= 12 && report.unresolved == 0);
}

#[test]
fn dropping_an_ack_is_caught_as_fabrication() {
    let (history, snapshot) = recorded_fixture();
    // Drop the op that acknowledged "k"@2: the replicas' agreed version 3
    // now exceeds what the remaining recorded writes could assign.
    let mut ops = history.ops().to_vec();
    let victim =
        find_op(&history, 1, |op| matches!(&op.desc, OpDesc::Put { key, .. } if key == "k"));
    ops.remove(victim);
    let violations = check_convergence(&History::from_ops(ops), &snapshot);
    assert_eq!(violations.len(), 1, "exactly the injected violation: {violations:?}");
    assert!(matches!(
        &violations[0],
        Violation::Fabrication { key, version: Version(3), writes: 2 } if key == "k"
    ));
}

#[test]
fn reordered_session_reads_are_caught_as_monotonicity() {
    let (history, snapshot) = recorded_fixture();
    // The reader session's two reads of "k" both saw version 2. Reorder
    // its history so the *later* read observes the older version 1.
    let mut ops = history.ops().to_vec();
    let reader_session = {
        let first = find_op(&history, 0, |op| is_get_of(op, "k"));
        let other = find_op(&history, 2, |op| is_get_of(op, "k"));
        assert_ne!(ops[first].session, ops[other].session, "two sessions read");
        ops[other].session
    };
    let later = find_op(&history, 3, |op| is_get_of(op, "k"));
    assert_eq!(ops[later].session, reader_session);
    ops[later].outcome = Some(Outcome::Read { version: Some(Version(1)) });
    let h = History::from_ops(ops);
    let violations = check_monotonic_reads(&h);
    assert_eq!(violations.len(), 1, "exactly the injected violation: {violations:?}");
    assert!(matches!(
        &violations[0],
        Violation::MonotonicRead { key, earlier: Version(2), later: Version(1), witness, .. }
            if key == "k" && witness.len() == 2
    ));
    // The reader session never wrote, so read-your-writes stays silent —
    // the corruption is attributed to the right guarantee.
    assert!(check_read_your_writes(&h).is_empty());
    let _ = snapshot;
}

#[test]
fn stale_read_after_own_write_is_caught_as_read_your_writes() {
    let (history, _) = recorded_fixture();
    // The writer acked "k"@2, then read it back: lower that read to v1.
    let mut ops = history.ops().to_vec();
    let writer_read = find_op(&history, 0, |op| is_get_of(op, "k"));
    ops[writer_read].outcome = Some(Outcome::Read { version: Some(Version(1)) });
    let violations = check_read_your_writes(&History::from_ops(ops));
    assert_eq!(violations.len(), 1, "exactly the injected violation: {violations:?}");
    assert!(matches!(
        &violations[0],
        Violation::ReadYourWrites { key, acked: Version(2), read: Version(1), .. } if key == "k"
    ));
}

#[test]
fn resurrecting_a_tombstone_is_caught() {
    let (history, _) = recorded_fixture();
    // Append a read that returns the deleted key's old value after the
    // delete was acknowledged and observed.
    let mut ops = history.ops().to_vec();
    let last = ops.last().expect("non-empty").clone();
    let end = last.completed.expect("resolved") + 100;
    ops.push(Op {
        req: last.req + 1_000,
        session: last.session,
        phase: None,
        invoked: end,
        desc: OpDesc::Get { key: "k".into() },
        completed: Some(end + 20),
        outcome: Some(Outcome::Read { version: Some(Version(1)) }),
    });
    let violations = check_tombstone_safety(&History::from_ops(ops));
    assert_eq!(violations.len(), 1, "exactly the injected violation: {violations:?}");
    assert!(matches!(
        &violations[0],
        Violation::TombstoneResurrection { key, superseded_by: Version(3), read: Version(1), .. }
            if key == "k"
    ));
}

#[test]
fn tearing_a_batch_is_caught_as_torn_batch() {
    let (history, _) = recorded_fixture();
    // Remove item "b" from the second complete feed read: the fully-acked,
    // fully-visible batch is now partially visible with no delete.
    let mut ops = history.ops().to_vec();
    let second = find_op(&history, 1, is_mget);
    let Some(Outcome::MultiGet { items, complete }) = ops[second].outcome.clone() else {
        panic!("fixture mget resolved");
    };
    let torn: Vec<_> = items.into_iter().filter(|(k, _)| k != "b").collect();
    assert_eq!(torn.len(), 2);
    ops[second].outcome = Some(Outcome::MultiGet { items: torn, complete });
    let violations = check_atomic_visibility(&History::from_ops(ops));
    assert_eq!(violations.len(), 1, "exactly the injected violation: {violations:?}");
    assert!(matches!(
        &violations[0],
        Violation::TornBatch { tag, missing, witness, .. }
            if tag == "feed:x" && missing == &["b".to_owned()] && witness.len() == 3
    ));
}

#[test]
fn regressing_a_feed_item_is_caught() {
    let (history, _) = recorded_fixture();
    // Lower one item's version in the second complete feed read.
    let mut ops = history.ops().to_vec();
    let second = find_op(&history, 1, is_mget);
    let Some(Outcome::MultiGet { mut items, complete }) = ops[second].outcome.clone() else {
        panic!("fixture mget resolved");
    };
    let slot = items.iter_mut().find(|(k, _)| k == "c").expect("item present");
    slot.1 = Version(0);
    ops[second].outcome = Some(Outcome::MultiGet { items, complete });
    let violations = check_atomic_visibility(&History::from_ops(ops));
    assert_eq!(violations.len(), 1, "exactly the injected violation: {violations:?}");
    assert!(matches!(
        &violations[0],
        Violation::FeedRegression { tag, key, later: Version(0), .. }
            if tag == "feed:x" && key == "c"
    ));
}

#[test]
fn partial_feed_reads_are_exempt_from_atomicity() {
    let (history, _) = recorded_fixture();
    // The same tear, but on a read marked partial (deadline-cut union):
    // missing items there are availability, not safety.
    let mut ops = history.ops().to_vec();
    let second = find_op(&history, 1, is_mget);
    let Some(Outcome::MultiGet { items, .. }) = ops[second].outcome.clone() else {
        panic!("fixture mget resolved");
    };
    let torn: Vec<_> = items.into_iter().filter(|(k, _)| k != "b").collect();
    ops[second].outcome = Some(Outcome::MultiGet { items: torn, complete: false });
    assert!(check_atomic_visibility(&History::from_ops(ops)).is_empty());
}

#[test]
fn diverged_replicas_are_caught() {
    let (history, snapshot) = recorded_fixture();
    // Flip one live replica of "a" to an older version.
    let ah = dd_sim::rng::stable_hash(b"a");
    let mut snap = snapshot;
    let t = snap.iter_mut().find(|t| t.key_hash == ah).expect("replica of a");
    t.version = Version(0);
    let violations = check_convergence(&history, &snap);
    assert_eq!(violations.len(), 1, "exactly the injected violation: {violations:?}");
    assert!(matches!(
        &violations[0],
        Violation::Divergence { key, replicas } if key == "a" && replicas.len() >= 2
    ));
}

#[test]
fn losing_an_acked_write_is_a_warning() {
    let (history, snapshot) = recorded_fixture();
    // Erase every replica of "a": the acked write no longer survives.
    let ah = dd_sim::rng::stable_hash(b"a");
    let snap: Vec<ReplicaTuple> = snapshot.into_iter().filter(|t| t.key_hash != ah).collect();
    let violations = check_convergence(&history, &snap);
    assert_eq!(violations.len(), 1, "exactly the injected violation: {violations:?}");
    assert!(matches!(
        &violations[0],
        Violation::LostWrite { key, converged: None, .. } if key == "a"
    ));
    assert!(!violations[0].is_safety(), "durability loss is a warning, not a safety violation");
    let report = check(&history, &snap);
    assert!(report.is_clean() && report.warning_count() == 1);
}
