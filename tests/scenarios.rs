//! Scenario-plane integration tests: determinism of whole declarative
//! runs, availability under partition + heal, and the error accounting
//! of phases that end with operations still in flight.

use dd_core::scenario::library;
use dd_core::{
    Cluster, ClusterConfig, EnvChange, Fault, OpMix, Phase, Placement, Scenario, Tier, WorkloadKind,
};
use dd_sim::churn::ChurnModel;
use dd_sim::LatencyModel;

fn settled(config: ClusterConfig, seed: u64) -> Cluster {
    let mut c = Cluster::new(config, seed);
    c.settle();
    c
}

/// A deliberately hostile scenario touching every timeline: mixed-op
/// phases, a churn burst, a flap, a loss spike, a latency shift and a
/// partition/heal pair — so the determinism check covers drop and
/// partition decisions routed through `NetConfig::route`.
fn hostile(seed: u64) -> Scenario {
    let model = ChurnModel::default().failure_rate(0.06).mean_downtime(2_000).permanent_prob(0.1);
    Scenario::new("hostile", WorkloadKind::SocialFeed { users: 5 }, seed)
        .phase(
            Phase::new("load", 4_000)
                .mix(OpMix::idle().put(2).multi_put(1).batch(3))
                .sessions(3)
                .depth(4)
                .ops(120),
        )
        .phase(
            Phase::new("serve", 8_000)
                .mix(OpMix::idle().put(1).get(4).delete(1).multi_get(1).scan(1))
                .sessions(4)
                .depth(6)
                .ops(240),
        )
        .phase(Phase::new("repair", 6_000))
        .phase(Phase::new("readback", 4_000).mix(OpMix::gets()).sessions(2).depth(4).ops(80))
        .fault(4_000, Fault::ChurnBurst { tier: Tier::Persist, model, span: 8_000 })
        .fault(6_000, Fault::Flap { tier: Tier::Persist, count: 3, down_for: 1_500 })
        .env(4_500, EnvChange::DropProb(0.05))
        .env(5_500, EnvChange::Latency(LatencyModel::Uniform { min: 2, max: 9 }))
        .env(7_000, EnvChange::PartitionPersist { fraction: 0.25 })
        .env(10_000, EnvChange::Heal)
        .env(11_000, EnvChange::DropProb(0.0))
}

#[test]
fn same_scenario_same_seed_replays_byte_identically() {
    // The determinism regression: the full report — availability,
    // staleness, error taxonomy, latency quantiles, message counts —
    // must be a pure function of (cluster seed, scenario), including
    // every drop/partition decision the network model makes.
    let run = || {
        let mut c = settled(ClusterConfig::small().persist_n(24), 42);
        c.run_scenario(&hostile(9))
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "replay diverged");
    assert_eq!(format!("{first:?}"), format!("{second:?}"), "debug rendering diverged");
    // And the run is not degenerate: traffic flowed and something failed
    // or at least crossed the wire under the hostile timeline.
    assert!(first.issued() >= 300, "hostile scenario issued {}", first.issued());
    assert!(first.msgs > 0);
    // A different seed is a different trajectory.
    let mut other = settled(ClusterConfig::small().persist_n(24), 42);
    assert_ne!(other.run_scenario(&hostile(10)), first);
}

#[test]
fn partition_dips_availability_and_heal_plus_repair_restore_it() {
    // Cache small enough that reads must touch the persistent layer, so
    // partitioning half of it away is felt. Reads of fully darkened key
    // ranges park at the coordinator and the heal re-issues their
    // fetches: a heal inside the client's patience now means *zero*
    // timeouts (the old protocol fired each fetch once and let the op
    // die). A control run whose partition never heals shows the outage
    // was real.
    let dark_half = |heal: bool| {
        let mut config = ClusterConfig::small().persist_n(24);
        config.cache_capacity = 1;
        let mut c = settled(config, 5);
        let mut scenario = Scenario::new("dark-half", WorkloadKind::Uniform, 11)
            .phase(Phase::new("load", 4_000).mix(OpMix::puts()).sessions(2).depth(4).ops(60))
            .phase(Phase::new("dark", 6_000).mix(OpMix::gets()).sessions(2).depth(4).ops(60))
            .phase(Phase::new("repair", 8_000))
            .phase(Phase::new("readback", 6_000).mix(OpMix::gets()).sessions(2).depth(4).ops(60))
            .env(4_000, EnvChange::PartitionPersist { fraction: 0.5 });
        if heal {
            scenario = scenario.env(10_000, EnvChange::Heal);
        }
        c.run_scenario(&scenario)
    };
    let report = dark_half(true);
    let dark = &report.phases[1];
    let readback = &report.phases[3];
    assert_eq!(dark.errors.timeouts, 0, "healed-in-time reads all complete: {dark:?}");
    assert_eq!(dark.availability(), 1.0);
    assert_eq!(readback.availability(), 1.0, "healed cluster serves everything");
    assert_eq!(readback.reads_found, 60, "no write was lost to the partition");
    // Control: with the partition left in place, those same parked reads
    // exhaust the client's patience — the dip the heal rescued us from.
    let control = dark_half(false);
    assert!(
        control.errors().timeouts > 0,
        "unhealed partition must cost timeouts, got {:?}",
        control.errors()
    );
    assert!(control.availability() < 1.0);
}

#[test]
fn tag_placement_partition_heal_serves_every_op() {
    // Regression for the E15 tag-placement partition-heal cell: two
    // single-key gets whose r slot-owners were all dark used to time out
    // (availability 0.9977) because a fetch was fired exactly once. The
    // failure-detector's PeerUp notice now re-issues parked fetches, so
    // the heal completes them within the client's patience.
    let config =
        ClusterConfig::small().persist_n(36).replication(3).placement(Placement::TagCollocation);
    let mut c = settled(config, 2026);
    let report = c.run_scenario(&library::partition_heal(2026));
    assert_eq!(report.errors().timeouts, 0, "no op times out across partition + heal");
    assert_eq!(report.availability(), 1.0, "every issued op completes: {:?}", report.errors());
}

#[test]
fn a_phase_ending_with_unharvested_pendings_still_accounts_for_them() {
    // Kill the whole soft tier shortly after the phase starts: ops in
    // flight at the crash can never complete (timeouts), later
    // submissions find no live entry node. The phase is far shorter than
    // OP_TIMEOUT, so none of those failures resolve inside it — the
    // scenario's final drain must still attribute every one of them to
    // the issuing phase's error taxonomy. The network is slow (40-tick
    // hops, which also exercises the NetConfig-derived settle horizon)
    // so several operations genuinely straddle the crash.
    let mut c = Cluster::new(ClusterConfig::small(), 6);
    c.sim.net = dd_sim::NetConfig::new().latency(LatencyModel::Constant(40));
    assert_eq!(c.settle_horizon(), 1_000 + 50 * 40, "horizon follows the slow network");
    c.settle();
    let scenario = Scenario::new("doomed", WorkloadKind::Uniform, 13)
        .phase(Phase::new("doomed", 2_000).mix(OpMix::puts()).sessions(2).depth(2).ops(30))
        .fault(300, Fault::Crash { tier: Tier::Soft, count: 4 });
    let report = c.run_scenario(&scenario);
    let phase = &report.phases[0];
    assert_eq!(phase.issued, 30, "issuance continues even against a dead tier");
    assert_eq!(
        phase.ok + phase.errors.total(),
        phase.issued,
        "every issued op resolves into the report: {phase:?}"
    );
    assert!(phase.ok > 0, "ops before the crash succeed");
    assert!(phase.errors.timeouts > 0, "in-flight ops at the crash time out");
    assert!(phase.errors.no_entry > 0, "post-crash submissions report NoLiveEntry");
    assert!(report.ticks > scenario.duration(), "the final drain ran past the last phase");
}

#[test]
fn library_drills_keep_the_dataset_available() {
    // The four stock drills, one placement, small cluster: every drill
    // ends with a read-back phase that still serves the dataset.
    for scenario in [
        library::calm(3),
        library::churn_storm(3),
        library::partition_heal(3),
        library::cascading_crash(3),
    ] {
        let mut c = settled(ClusterConfig::small().persist_n(24), 8);
        let report = c.run_scenario(&scenario);
        let readback = report.phases.last().expect("drills end with read-back");
        assert!(
            readback.availability() >= 0.99,
            "{}: read-back availability {:.4}",
            report.name,
            readback.availability()
        );
        assert!(readback.reads_found > 0, "{}: read-back found data", report.name);
        assert_eq!(report.errors().partials, 0, "{}: no partial batches", report.name);
    }
}
