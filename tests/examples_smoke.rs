//! Smoke test: every example under `examples/` must build and run to
//! completion with a zero exit status. The examples double as executable
//! documentation, so a broken one is a broken doc — this catches it in
//! plain `cargo test` without requiring a separate CI step.

use std::path::Path;
use std::process::Command;

/// Runs `cargo run --example <name>` with the same cargo that is driving
/// this test, and returns the example's stdout (panicking with the
/// combined output on failure).
fn run_example(name: &str) -> String {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = Command::new(cargo)
        .current_dir(manifest_dir)
        .args(["run", "--quiet", "--example", name])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn every_example_is_covered_here() {
    // If a new example lands without a smoke test below, fail loudly.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut found: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/ directory exists")
        .filter_map(|e| {
            let name = e.ok()?.file_name().into_string().ok()?;
            name.strip_suffix(".rs").map(str::to_owned)
        })
        .collect();
    found.sort();
    assert_eq!(
        found,
        vec![
            "analytics_scan",
            "audited_drill",
            "outage_drill",
            "quickstart",
            "social_feed",
            "telemetry_drill",
            "threaded_gossip",
            "traced_drill"
        ],
        "examples/ changed — update examples_smoke.rs to cover the new set"
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart");
}

#[test]
fn social_feed_runs_and_exercises_multi_ops() {
    // The example must drive the real multi-tuple operation plane
    // (multi_put batches, tag-routed multi_get) — not a static sieve
    // analysis — and report the measured contact accounting.
    let out = run_example("social_feed");
    assert!(
        out.contains("multi_put") && out.contains("multi_get"),
        "social_feed must exercise the multi-op path; got:\n{out}"
    );
    assert!(
        out.contains("tag sieves") && out.contains("uniform"),
        "social_feed must compare placements; got:\n{out}"
    );
}

#[test]
fn analytics_scan_runs() {
    run_example("analytics_scan");
}

#[test]
fn outage_drill_runs_pure_scenarios() {
    // The drill must be a pure-Scenario program: both acts print the
    // standard per-phase report (availability line included) and end with
    // a served read-back.
    let out = run_example("outage_drill");
    assert!(
        out.contains("partition-heal") && out.contains("compound-outage"),
        "outage_drill must run both drills; got:\n{out}"
    );
    assert!(out.matches("availability").count() >= 2, "per-scenario availability reported");
    assert!(out.contains("readback"), "phase table includes the read-back phase");
}

#[test]
fn threaded_gossip_runs() {
    run_example("threaded_gossip");
}

#[test]
fn traced_drill_runs_the_tracing_plane() {
    // The example must run a stock drill traced, pin the tail op on a
    // never-answered wait, and export a Chrome trace file.
    let out = run_example("traced_drill");
    assert!(
        out.contains("critical-path time by hop"),
        "traced drill must print the per-hop breakdown; got:\n{out}"
    );
    assert!(
        out.contains("never answered"),
        "traced drill must pin the tail on an unanswered wait; got:\n{out}"
    );
    assert!(
        out.contains("chrome://tracing"),
        "traced drill must export a Chrome trace; got:\n{out}"
    );
}

#[test]
fn telemetry_drill_runs_the_telemetry_plane() {
    // The example must run a stock drill instrumented (clean detectors),
    // catch the seeded completion-log leak on the backlog gauge, and
    // export both wire formats.
    let out = run_example("telemetry_drill");
    assert!(
        out.contains("cluster series (min/mean/max/last)"),
        "telemetry drill must print the series table; got:\n{out}"
    );
    assert!(
        out.contains("detectors: clean"),
        "telemetry drill's healthy run must come out clean; got:\n{out}"
    );
    assert!(
        out.contains("leak") && out.contains("cluster.completion_backlog"),
        "telemetry drill must pin the seeded leak on the backlog gauge; got:\n{out}"
    );
    assert!(
        out.contains("Prometheus") && out.contains("CSV"),
        "telemetry drill must export both formats; got:\n{out}"
    );
}

#[test]
fn audited_drill_runs_the_audit_plane() {
    // The example must run a stock drill audited (clean verdict) and
    // demonstrate a structured violation with its witness sub-history.
    let out = run_example("audited_drill");
    assert!(
        out.contains("0 safety violation(s)"),
        "audited drill must report a clean verdict; got:\n{out}"
    );
    assert!(
        out.contains("[read-your-writes]") && out.contains("witness sub-history"),
        "example must demonstrate reading a violation witness; got:\n{out}"
    );
}
