//! Cross-crate protocol composition tests: the pieces the paper composes
//! (membership → dissemination → estimation → placement) working together.

use dd_epidemic::push::{PushConfig, Rumor, RumorId};
use dd_epidemic::{required_fanout, BroadcastConfig, BroadcastMsg, BroadcastNode};
use dd_estimation::{ExtremaEstimator, ExtremaNode};
use dd_membership::{CyclonConfig, CyclonState, MembershipOracle, PeerSampler};
use dd_sieve::{check_coverage, ItemMeta, UniformSieve};
use dd_sim::{Duration, NodeId, Sim, SimConfig, Time};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Dissemination over *partial views* (Cyclon-built) instead of full
/// membership: coverage should match the full-membership prediction,
/// confirming the paper's premise that "knowing all nodes" is unnecessary.
#[test]
fn broadcast_over_cyclon_views_reaches_everyone() {
    let n = 300u64;
    // Phase 1: run Cyclon to build well-mixed views.
    use dd_membership::CyclonProcess;
    let cfg = CyclonConfig { view_size: 12, shuffle_len: 6, period: Duration(100) };
    let mut msim: Sim<CyclonProcess> = Sim::new(SimConfig::default().seed(1));
    for i in 0..n {
        let boot = vec![NodeId((i + 1) % n), NodeId((i + 7) % n)];
        msim.add_node(NodeId(i), CyclonProcess::new(CyclonState::new(NodeId(i), cfg, &boot)));
    }
    msim.run_until(Time(40 * 100));
    let views: Vec<Vec<NodeId>> =
        (0..n).map(|i| msim.node(NodeId(i)).unwrap().state.view().nodes().collect()).collect();

    // Phase 2: broadcast over the frozen views.
    #[derive(Debug, Clone)]
    struct FixedPeers(Vec<NodeId>);
    impl PeerSampler for FixedPeers {
        fn peers(&self) -> Vec<NodeId> {
            self.0.clone()
        }
        fn sample_peers(&self, rng: &mut dyn rand::RngCore, k: usize) -> Vec<NodeId> {
            use rand::seq::SliceRandom;
            let mut v = self.0.clone();
            v.shuffle(rng);
            v.truncate(k);
            v
        }
    }
    let fanout = 8; // < view size, > ln(300)+c threshold for good coverage
    let bcfg = BroadcastConfig {
        push: PushConfig { fanout, ..PushConfig::default() },
        anti_entropy_period: Some(Duration(500)),
    };
    let mut bsim: Sim<BroadcastNode<FixedPeers, u32>> = Sim::new(SimConfig::default().seed(2));
    for i in 0..n {
        bsim.add_node(NodeId(i), BroadcastNode::new(FixedPeers(views[i as usize].clone()), bcfg));
    }
    bsim.inject(
        NodeId(0),
        NodeId(0),
        BroadcastMsg::Rumor(Rumor { id: RumorId(1), hops: 0, payload: 7 }),
    );
    bsim.run_until(Time(20_000));
    let reached = (0..n).filter(|&i| bsim.node(NodeId(i)).unwrap().has(RumorId(1))).count();
    assert_eq!(reached as u64, n, "partial views suffice for full dissemination");
}

/// The paper's sieve pipeline: epidemic size estimation feeds the uniform
/// `r/N̂` sieve; expected replication must track the true `r` even though
/// no node knows N exactly.
#[test]
fn size_estimate_feeds_replication_sieve() {
    let n = 400u64;
    let k = 256;
    let period = Duration(100);
    let mut sim: Sim<ExtremaNode<MembershipOracle>> = Sim::new(SimConfig::default().seed(3));
    let mut seeder = SmallRng::seed_from_u64(33);
    for i in 0..n {
        sim.add_node(
            NodeId(i),
            ExtremaNode::new(
                MembershipOracle::dense(NodeId(i), n),
                ExtremaEstimator::generate(&mut seeder, k),
                period,
                2,
            ),
        );
    }
    sim.run_until(Time(25 * 100));

    // Each node builds its sieve from ITS OWN estimate.
    let r = 4u32;
    let sieves: Vec<UniformSieve> = (0..n)
        .map(|i| {
            let est = sim.node(NodeId(i)).unwrap().estimate().round().max(1.0) as u64;
            UniformSieve::replication(i, r, est)
        })
        .collect();
    let items: Vec<ItemMeta> =
        (0..3_000).map(|i| ItemMeta::from_key(format!("it{i}").as_bytes())).collect();
    let report = check_coverage(&sieves, &items);
    assert!(
        (report.replicas.mean - f64::from(r)).abs() < 0.8,
        "estimated-N sieves give mean replication {}",
        report.replicas.mean
    );
    // Uniform r/N sieves leave ≈ e^{-r} of items uncovered (≈1.8% at r=4)
    // — the inherent probabilistic gap the paper's redundancy maintenance
    // closes. Expect ≈55 of 3000; assert the order of magnitude.
    let expected_uncovered = 3_000.0 * (-f64::from(r)).exp();
    assert!(
        (report.uncovered as f64) < 2.5 * expected_uncovered,
        "uncovered items {} (expected ≈{expected_uncovered:.0})",
        report.uncovered
    );
}

/// The paper's fanout formula at moderate scale, end to end: with
/// `fanout = ln N + c(0.999)` a single run almost surely infects all.
#[test]
fn paper_fanout_formula_validates_at_2000_nodes() {
    let n = 2_000u64;
    let fanout = required_fanout(n, 0.999);
    let cfg = BroadcastConfig {
        push: PushConfig { fanout, ..PushConfig::default() },
        anti_entropy_period: None,
    };
    let (reached, msgs) = dd_epidemic::broadcast::run_dissemination(n, cfg, 5, Duration(20_000));
    assert_eq!(reached as u64, n);
    // Message cost ≈ n × fanout.
    let expected = n * u64::from(fanout);
    assert!(
        (msgs as f64 - expected as f64).abs() / (expected as f64) < 0.2,
        "messages {msgs} vs expected ≈{expected}"
    );
}

/// Cyclon views keep healing while the population churns, and the
/// remaining nodes stay connected.
#[test]
fn membership_self_heals_under_churn() {
    use dd_membership::CyclonProcess;
    let n = 128u64;
    let cfg = CyclonConfig { view_size: 10, shuffle_len: 5, period: Duration(100) };
    let mut sim: Sim<CyclonProcess> = Sim::new(SimConfig::default().seed(8));
    for i in 0..n {
        let boot = vec![NodeId((i + 1) % n)];
        sim.add_node(NodeId(i), CyclonProcess::new(CyclonState::new(NodeId(i), cfg, &boot)));
    }
    sim.run_until(Time(20 * 100));
    // Kill a quarter of the nodes permanently.
    for i in 0..n / 4 {
        sim.kill(NodeId(i * 4));
    }
    sim.run_until(Time(80 * 100));
    // Survivors' views should mostly reference live nodes.
    let mut dead_refs = 0usize;
    let mut total_refs = 0usize;
    for i in 0..n {
        if !sim.is_alive(NodeId(i)) {
            continue;
        }
        for peer in sim.node(NodeId(i)).unwrap().state.view().nodes() {
            total_refs += 1;
            if !sim.is_alive(peer) {
                dead_refs += 1;
            }
        }
    }
    let frac = dead_refs as f64 / total_refs.max(1) as f64;
    assert!(frac < 0.12, "stale view references after churn: {frac}");
}

/// Sanity link between the analysis module and the sieve cost trade-off
/// the paper describes: partial dissemination plus redundancy covers the
/// replicas at much lower cost than atomic dissemination.
#[test]
fn partial_dissemination_cost_tradeoff_holds() {
    use dd_epidemic::analysis::{dissemination_cost, expected_coverage};
    let n = 10_000u64;
    let atomic = dissemination_cost(n, 0.999);
    // Reaching 95% of nodes needs fanout ≈ 4.7 (fixed point); cost n·5.
    let partial = n * 5;
    assert!(expected_coverage(5.0) > 0.95);
    assert!(atomic as f64 > 3.0 * partial as f64, "atomic {atomic} vs partial {partial}");
}
