//! Whole-system integration tests: the DataDroplets cluster under faults,
//! loss and churn, checked against an in-memory oracle.

use dd_core::{Cluster, ClusterConfig, Key, Workload, WorkloadKind};
use dd_sim::churn::{ChurnModel, ChurnSchedule};
use dd_sim::{NodeId, Time};
use std::collections::HashMap;

fn settled(config: ClusterConfig, seed: u64) -> Cluster {
    let mut c = Cluster::new(config, seed);
    c.settle();
    c
}

#[test]
fn hundred_writes_all_readable() {
    let mut c = settled(ClusterConfig::small(), 1);
    let mut oracle = HashMap::new();
    let mut w = Workload::new(WorkloadKind::Uniform, 9);
    for op in w.take_puts(100) {
        let req = c.put(op.key.clone(), op.value.clone(), op.attr, op.tag.as_deref());
        assert!(c.wait_put(req).is_some(), "write {} timed out", op.key);
        oracle.insert(op.key, op.value);
    }
    c.run_for(5_000);
    for (key, value) in &oracle {
        let r = c.get(key.clone());
        let got = c.wait_get(r).expect("read completes").expect("key present");
        assert_eq!(&got.value.to_vec(), value, "key {key}");
    }
}

#[test]
fn reads_and_writes_survive_message_loss() {
    let mut config = ClusterConfig::small();
    config.persist_n = 24;
    let mut c = Cluster::new(config, 2);
    c.sim.net.drop_prob = 0.05;
    c.settle();
    let mut ok = 0;
    for i in 0..30 {
        let req = c.put(format!("lossy:{i}"), vec![i as u8], None, None);
        if c.wait_put(req).is_some() {
            ok += 1;
        }
    }
    // The client injection and the coordinator-forward hop are lossy too,
    // so a few percent of writes never enter the system at all.
    assert!(ok >= 25, "most writes complete under 5% loss, got {ok}");
    c.run_for(10_000);
    // Individual fetches can be dropped too; clients retry as usual.
    let mut found = 0;
    for i in 0..30 {
        for _attempt in 0..3 {
            let r = c.get(format!("lossy:{i}"));
            if matches!(c.wait_get(r), Some(Some(_))) {
                found += 1;
                break;
            }
        }
    }
    assert!(
        found >= ok,
        "every completed write is readable under loss with retries: {found}/{ok}"
    );
}

#[test]
fn availability_maintained_under_scheduled_churn() {
    let mut c = settled(ClusterConfig::small().persist_n(30).replication(3), 3);
    // Write the dataset.
    for i in 0..40 {
        let req = c.put(format!("survive:{i}"), vec![i as u8], None, None);
        c.wait_put(req).expect("write completes");
    }
    c.run_for(5_000);

    // Transient churn on the persistent layer only (soft tier stays up, as
    // the paper assumes a moderately sized stable soft layer).
    let model = ChurnModel::default()
        .failure_rate(0.05) // 5% per 1000-tick round
        .mean_downtime(3_000)
        .permanent_prob(0.0);
    let schedule = ChurnSchedule::generate(&model, 30, Time(40_000), 7);
    // Shift schedule ids into the persist id range (soft ids come first).
    let offset = c.soft_ids().len() as u64;
    for ev in schedule.events() {
        let id = NodeId(ev.node().0 + offset);
        match ev {
            dd_sim::churn::ChurnEvent::Down(t, _) => c.sim.schedule_down(*t, id),
            dd_sim::churn::ChurnEvent::Up(t, _) => c.sim.schedule_up(*t, id),
            dd_sim::churn::ChurnEvent::Leave(t, _) => c.sim.schedule_down(*t, id),
        }
    }
    c.run_for(40_000);
    // After the churn window (plus repair time), every key must be
    // readable.
    c.run_for(10_000);
    let mut found = 0;
    for i in 0..40 {
        let r = c.get(format!("survive:{i}"));
        if matches!(c.wait_get(r), Some(Some(_))) {
            found += 1;
        }
    }
    assert_eq!(found, 40, "all keys readable after churn + repair");
}

#[test]
fn scan_matches_oracle_filter() {
    let mut c = settled(ClusterConfig::small(), 4);
    let mut w = Workload::new(WorkloadKind::NormalAttr { mean: 50.0, std_dev: 10.0 }, 5);
    let mut oracle = Vec::new();
    for op in w.take_puts(60) {
        let req = c.put(op.key.clone(), op.value.clone(), op.attr, None);
        c.wait_put(req).unwrap();
        oracle.push((op.key, op.attr.unwrap()));
    }
    c.run_for(5_000);
    let (lo, hi) = (45.0, 55.0);
    let s = c.scan(lo, hi);
    let items = c.wait_scan(s).expect("scan completes");
    let mut got: Vec<String> = items.iter().map(|t| t.key.0.clone()).collect();
    got.sort();
    let mut want: Vec<String> = oracle
        .iter()
        .filter(|(_, a)| (lo..=hi).contains(a))
        .map(|(k, _)| k.clone())
        .collect();
    want.sort();
    assert_eq!(got, want);
}

#[test]
fn aggregate_matches_oracle_extremes() {
    let mut c = settled(ClusterConfig::small(), 5);
    let attrs: Vec<f64> = (0..50).map(|i| f64::from(i) * 2.0 + 1.0).collect();
    for (i, &a) in attrs.iter().enumerate() {
        let req = c.put(format!("agg:{i}"), vec![], Some(a), None);
        c.wait_put(req).unwrap();
    }
    c.run_for(5_000);
    let req = c.aggregate();
    let agg = c.wait_aggregate(req).expect("aggregate completes");
    assert_eq!(agg.min, 1.0);
    assert_eq!(agg.max, 99.0);
    let est = agg.distinct_estimate();
    assert!((est - 50.0).abs() < 10.0, "distinct estimate {est}");
    let median = agg.quantile(0.5).unwrap();
    assert!((median - 50.0).abs() < 10.0, "median estimate {median}");
}


#[test]
fn soft_layer_rebuild_preserves_version_stream() {
    let mut c = settled(ClusterConfig::small(), 6);
    // Three versions of one key.
    for v in 1..=3u8 {
        let req = c.put("versioned", vec![v], None, None);
        c.wait_put(req).unwrap();
        c.run_for(1_000);
    }
    c.wipe_soft_layer();
    c.rebuild_soft_layer();
    // A further write must get version 4, not 1.
    let req = c.put("versioned", vec![4], None, None);
    let put = c.wait_put(req).unwrap();
    assert_eq!(put.version.0, 4, "version stream continues after rebuild");
    c.run_for(3_000);
    let r = c.get("versioned");
    let got = c.wait_get(r).unwrap().unwrap();
    assert_eq!(got.value.to_vec(), vec![4]);
}

#[test]
fn deterministic_replay_of_a_full_scenario() {
    let run = |seed: u64| {
        let mut c = settled(ClusterConfig::small(), seed);
        for i in 0..20 {
            let req = c.put(format!("d:{i}"), vec![i as u8], Some(f64::from(i)), None);
            c.wait_put(req).unwrap();
        }
        c.sim.kill(c.persist_ids()[3]);
        c.run_for(8_000);
        (
            c.sim.metrics().counter("net.sent"),
            c.sim.metrics().counter("persist.stored"),
            c.replica_count(&Key::from("d:7")),
        )
    };
    assert_eq!(run(42), run(42), "same seed, same trajectory");
    assert_ne!(run(42), run(43), "different seed, different trajectory");
}

#[test]
fn tagged_tuples_collocate_under_tag_sieves() {
    // Verify through the public sieve-spec API that a tag workload lands
    // together (protocol-level E-collocation check at cluster scale is in
    // the benches).
    use dd_core::SieveSpec;
    use dd_sieve::ItemMeta;
    let n = 32u64;
    let specs: Vec<SieveSpec> =
        (0..n).map(|s| SieveSpec::Tag { slot: s, slots: n, r: 3 }).collect();
    let mut w = Workload::new(WorkloadKind::SocialFeed { users: 8 }, 11);
    let mut per_feed: HashMap<String, Vec<usize>> = HashMap::new();
    for op in w.take_puts(200) {
        let item = ItemMeta::from_key(op.key.as_bytes())
            .with_tag(op.tag.as_ref().unwrap().as_bytes());
        let owners: Vec<usize> =
            specs.iter().enumerate().filter(|(_, s)| s.accepts(&item)).map(|(i, _)| i).collect();
        let e = per_feed.entry(op.tag.unwrap()).or_default();
        if e.is_empty() {
            *e = owners;
        } else {
            assert_eq!(*e, owners, "all posts of a feed share owners");
        }
    }
    assert!(per_feed.len() <= 8);
}

#[test]
fn multi_op_feed_workload_matches_oracle_with_r_node_reads() {
    // The full multi-tuple plane at cluster scale: social-feed batches in
    // through `multi_put`, feeds out through tag-routed `multi_get`,
    // checked against an in-memory oracle — and the per-op accounting
    // proves each feed read contacted at most replication + soft_n nodes.
    let config = ClusterConfig::small().persist_n(40).replication(3).tag_sieves();
    let mut c = settled(config.clone(), 17);
    let mut w = Workload::new(WorkloadKind::SocialFeed { users: 6 }, 23);
    // The generator is deterministic: a clone replays the same batches,
    // which is the oracle for what the cluster was fed.
    let mut replay = w.clone();
    let tags = c.drive_multi_puts(&mut w, 15, 4);
    let mut oracle: HashMap<String, Vec<String>> = HashMap::new();
    for _ in 0..15 {
        let m = replay.next_multi_put(4);
        let tag = m.tag.expect("tagged batch");
        for op in m.items {
            oracle.entry(tag.clone()).or_default().push(op.key);
        }
    }
    c.run_for(8_000);
    assert_eq!(tags.len(), oracle.len(), "driver saw every feed");
    for (tag, tuples) in tags.iter().zip(c.read_tags(&tags)) {
        let mut expect = oracle.remove(tag).expect("tag was written");
        let mut got: Vec<String> = tuples.into_iter().map(|t| t.key.0).collect();
        expect.sort();
        got.sort();
        assert_eq!(got, expect, "feed {tag} matches the oracle");
    }
    let contacts = c.sim.metrics().summary("multi_get.contacted_nodes");
    let allowance = f64::from(config.replication) + config.soft_n as f64;
    assert!(
        contacts.max <= allowance,
        "every feed read stayed within {allowance} contacts, saw {}",
        contacts.max
    );
}
