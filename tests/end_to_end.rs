//! Whole-system integration tests: the DataDroplets cluster under faults,
//! loss and churn, checked against an in-memory oracle — driven through
//! the typed, pipelined client sessions and, for whole experiments, the
//! declarative scenario plane.

use dd_core::{
    Cluster, ClusterConfig, Fault, Key, OpError, OpMix, Phase, Placement, Scenario, Tier,
    TupleSpec, Workload, WorkloadKind,
};
use dd_sim::churn::ChurnModel;
use std::collections::HashMap;

fn settled(config: ClusterConfig, seed: u64) -> Cluster {
    let mut c = Cluster::new(config, seed);
    c.settle();
    c
}

#[test]
fn hundred_writes_all_readable() {
    let mut c = settled(ClusterConfig::small(), 1);
    let mut client = c.client();
    let mut oracle = HashMap::new();
    let mut w = Workload::new(WorkloadKind::Uniform, 9);
    for op in w.take_puts(100) {
        let p = client.put(&mut c, op.key.clone(), op.value.clone(), op.attr, op.tag.as_deref());
        assert!(client.recv(&mut c, p).is_ok(), "write {} failed", op.key);
        oracle.insert(op.key, op.value);
    }
    c.run_for(5_000);
    for (key, value) in &oracle {
        let r = client.get(&mut c, key.clone());
        let got = client.recv(&mut c, r).expect("read completes").expect("key present");
        assert_eq!(&got.value.to_vec(), value, "key {key}");
    }
}

#[test]
fn reads_and_writes_survive_message_loss() {
    let mut config = ClusterConfig::small();
    config.persist_n = 24;
    let mut c = Cluster::new(config, 2);
    c.sim.net.drop_prob = 0.05;
    c.settle();
    let mut client = c.client();
    let mut ok = 0;
    for i in 0..30 {
        let p = client.put(&mut c, format!("lossy:{i}"), vec![i as u8], None, None);
        if client.recv(&mut c, p).is_ok() {
            ok += 1;
        }
    }
    // The client injection and the coordinator-forward hop are lossy too,
    // so a few percent of writes never enter the system at all.
    assert!(ok >= 25, "most writes complete under 5% loss, got {ok}");
    c.run_for(10_000);
    // Individual fetches can be dropped too; clients retry as usual.
    let mut found = 0;
    for i in 0..30 {
        for _attempt in 0..3 {
            let r = client.get(&mut c, format!("lossy:{i}"));
            if matches!(client.recv(&mut c, r), Ok(Some(_))) {
                found += 1;
                break;
            }
        }
    }
    assert!(found >= ok, "every completed write is readable under loss with retries: {found}/{ok}");
}

#[test]
fn availability_maintained_under_scheduled_churn() {
    // The whole experiment as one declarative scenario: load a dataset,
    // let transient churn rage across the persistent layer only (the
    // paper assumes a moderately sized stable soft tier), repair, read
    // everything back.
    let mut c = settled(ClusterConfig::small().persist_n(30).replication(3), 3);
    let model = ChurnModel::default()
        .failure_rate(0.05) // 5% per 1000-tick round
        .mean_downtime(3_000)
        .permanent_prob(0.0);
    let scenario = Scenario::new("survive-churn", WorkloadKind::Uniform, 7)
        .phase(Phase::new("load", 5_000).mix(OpMix::puts()).sessions(1).depth(2).ops(40))
        .phase(Phase::new("storm", 40_000))
        .phase(Phase::new("repair", 10_000))
        .phase(Phase::new("read", 8_000).mix(OpMix::gets()).sessions(1).depth(2).ops(40))
        .fault(5_000, Fault::ChurnBurst { tier: Tier::Persist, model, span: 40_000 });
    let report = c.run_scenario(&scenario);
    assert_eq!(report.phases[0].ok, 40, "every write acknowledged");
    let read = &report.phases[3];
    assert_eq!(read.reads_found, 40, "all keys readable after churn + repair");
    assert_eq!(read.availability(), 1.0);
    assert_eq!(report.errors().total(), 0);
}

#[test]
fn scan_matches_oracle_filter() {
    let mut c = settled(ClusterConfig::small(), 4);
    let mut client = c.client();
    let mut w = Workload::new(WorkloadKind::NormalAttr { mean: 50.0, std_dev: 10.0 }, 5);
    let mut oracle = Vec::new();
    for op in w.take_puts(60) {
        let p = client.put(&mut c, op.key.clone(), op.value.clone(), op.attr, None);
        client.recv(&mut c, p).unwrap();
        oracle.push((op.key, op.attr.unwrap()));
    }
    c.run_for(5_000);
    let (lo, hi) = (45.0, 55.0);
    let s = client.scan(&mut c, lo, hi);
    let items = client.recv(&mut c, s).expect("scan completes");
    let mut got: Vec<String> = items.iter().map(|t| t.key.as_str().to_owned()).collect();
    got.sort();
    let mut want: Vec<String> =
        oracle.iter().filter(|(_, a)| (lo..=hi).contains(a)).map(|(k, _)| k.clone()).collect();
    want.sort();
    assert_eq!(got, want);
}

#[test]
fn aggregate_matches_oracle_extremes() {
    let mut c = settled(ClusterConfig::small(), 5);
    let mut client = c.client();
    let attrs: Vec<f64> = (0..50).map(|i| f64::from(i) * 2.0 + 1.0).collect();
    for (i, &a) in attrs.iter().enumerate() {
        let p = client.put(&mut c, format!("agg:{i}"), vec![], Some(a), None);
        client.recv(&mut c, p).unwrap();
    }
    c.run_for(5_000);
    let a = client.aggregate(&mut c);
    let agg = client.recv(&mut c, a).expect("aggregate completes");
    assert_eq!(agg.min, 1.0);
    assert_eq!(agg.max, 99.0);
    let est = agg.distinct_estimate();
    assert!((est - 50.0).abs() < 10.0, "distinct estimate {est}");
    let median = agg.quantile(0.5).unwrap();
    assert!((median - 50.0).abs() < 10.0, "median estimate {median}");
}

#[test]
fn soft_layer_rebuild_preserves_version_stream() {
    let mut c = settled(ClusterConfig::small(), 6);
    let mut client = c.client();
    // Three versions of one key.
    for v in 1..=3u8 {
        let p = client.put(&mut c, "versioned", vec![v], None, None);
        client.recv(&mut c, p).unwrap();
        c.run_for(1_000);
    }
    c.wipe_soft_layer();
    c.rebuild_soft_layer();
    // A further write must get version 4, not 1.
    let p = client.put(&mut c, "versioned", vec![4], None, None);
    let put = client.recv(&mut c, p).unwrap();
    assert_eq!(put.version.0, 4, "version stream continues after rebuild");
    c.run_for(3_000);
    let r = client.get(&mut c, "versioned");
    let got = client.recv(&mut c, r).unwrap().unwrap();
    assert_eq!(got.value.to_vec(), vec![4]);
}

#[test]
fn deterministic_replay_of_a_full_scenario() {
    // Message *counts* are structural under digest-first repair and
    // direct sieve-routed delivery, so the fingerprint also folds in op
    // completion times — those ride the seeded latency samples.
    let run = |seed: u64| {
        let mut c = settled(ClusterConfig::small(), seed);
        let mut client = c.client();
        let mut completion_ticks = 0u64;
        for i in 0..20 {
            let p = client.put(&mut c, format!("d:{i}"), vec![i as u8], Some(f64::from(i)), None);
            while client.poll(&mut c, &p).is_none() {
                c.pump(1);
            }
            completion_ticks += c.sim.now().0;
        }
        c.sim.kill(c.persist_ids()[3]);
        c.run_for(8_000);
        (
            c.sim.metrics().counter("net.sent"),
            c.sim.metrics().counter("persist.stored"),
            c.replica_count(&Key::from("d:7")),
            completion_ticks,
        )
    };
    assert_eq!(run(42), run(42), "same seed, same trajectory");
    assert_ne!(run(42), run(43), "different seed, different trajectory");
}

#[test]
fn tagged_tuples_collocate_under_tag_sieves() {
    // Verify through the public sieve-spec API that a tag workload lands
    // together (protocol-level E-collocation check at cluster scale is in
    // the benches).
    use dd_core::SieveSpec;
    use dd_sieve::ItemMeta;
    let n = 32u64;
    let specs: Vec<SieveSpec> =
        (0..n).map(|s| SieveSpec::Tag { slot: s, slots: n, r: 3 }).collect();
    let mut w = Workload::new(WorkloadKind::SocialFeed { users: 8 }, 11);
    let mut per_feed: HashMap<String, Vec<usize>> = HashMap::new();
    for op in w.take_puts(200) {
        let item =
            ItemMeta::from_key(op.key.as_bytes()).with_tag(op.tag.as_ref().unwrap().as_bytes());
        let owners: Vec<usize> =
            specs.iter().enumerate().filter(|(_, s)| s.accepts(&item)).map(|(i, _)| i).collect();
        let e = per_feed.entry(op.tag.unwrap()).or_default();
        if e.is_empty() {
            *e = owners;
        } else {
            assert_eq!(*e, owners, "all posts of a feed share owners");
        }
    }
    assert!(per_feed.len() <= 8);
}

#[test]
fn multi_op_feed_workload_matches_oracle_with_r_node_reads() {
    // The full multi-tuple plane at cluster scale: social-feed batches in
    // through `multi_put`, feeds out through tag-routed `multi_get`,
    // checked against an in-memory oracle — and the per-op accounting
    // proves each feed read contacted at most replication + soft_n nodes.
    let config =
        ClusterConfig::small().persist_n(40).replication(3).placement(Placement::TagCollocation);
    let mut c = settled(config.clone(), 17);
    let mut client = c.client();
    let mut w = Workload::new(WorkloadKind::SocialFeed { users: 6 }, 23);
    // The generator is deterministic: a clone replays the same batches,
    // which is the oracle for what the cluster was fed.
    let mut replay = w.clone();
    let mut tags: Vec<String> = Vec::new();
    for _ in 0..15 {
        let m = w.next_multi_put(4);
        if let Some(tag) = m.tag {
            if !tags.contains(&tag) {
                tags.push(tag);
            }
        }
        let p = client.multi_put(&mut c, m.items.into_iter().map(TupleSpec::from));
        assert_eq!(client.recv(&mut c, p).expect("batch orders").items, 4);
    }
    let mut oracle: HashMap<String, Vec<String>> = HashMap::new();
    for _ in 0..15 {
        let m = replay.next_multi_put(4);
        let tag = m.tag.expect("tagged batch");
        for op in m.items {
            oracle.entry(tag.clone()).or_default().push(op.key);
        }
    }
    c.run_for(8_000);
    assert_eq!(tags.len(), oracle.len(), "driver saw every feed");
    for tag in &tags {
        let p = client.multi_get(&mut c, tag);
        let tuples = client.recv(&mut c, p).expect("feed read completes");
        let mut expect = oracle.remove(tag).expect("tag was written");
        let mut got: Vec<String> = tuples.into_iter().map(|t| t.key.as_str().to_owned()).collect();
        expect.sort();
        got.sort();
        assert_eq!(got, expect, "feed {tag} matches the oracle");
    }
    let contacts = c.sim.metrics().summary("multi_get.contacted_nodes");
    let allowance = f64::from(config.replication) + config.soft_n as f64;
    assert!(
        contacts.max <= allowance,
        "every feed read stayed within {allowance} contacts, saw {}",
        contacts.max
    );
}

#[test]
fn pipelined_sessions_outpace_lock_step() {
    // The phase engine at two depths on seed-replayed clusters: deeper
    // pipelines complete more of the same offered mix in the same fixed
    // window. Depth 1 is the old lock-step plane's throughput ceiling.
    let run = |depth: usize| {
        let mut c = settled(ClusterConfig::small(), 27);
        let scenario = Scenario::new("depth-sweep", WorkloadKind::Uniform, 31)
            .phase(Phase::new("puts", 600).mix(OpMix::puts()).sessions(4).depth(depth).quantum(5));
        let report = c.run_scenario(&scenario);
        let phase = &report.phases[0];
        assert_eq!(phase.errors.total(), 0, "no op fails at depth {depth}");
        assert_eq!(phase.ok, phase.issued);
        phase.ok
    };
    let lock_step = run(1);
    let pipelined = run(16);
    assert!(
        pipelined >= 2 * lock_step,
        "depth 16 must clearly beat lock-step: {pipelined} vs {lock_step} ops in the window"
    );
}

#[test]
fn timeout_and_absent_key_are_distinct_outcomes() {
    // The two cases the old Option<Option<_>> plane conflated: a read of
    // a never-written key is Ok(None); an op whose coordinator tier
    // cannot answer is Err(Timeout).
    let mut c = settled(ClusterConfig::small(), 29);
    let mut client = c.client();
    let r = client.get(&mut c, "never-written");
    assert_eq!(client.recv(&mut c, r), Ok(None), "absent key is a successful read");

    // Kill the whole soft tier mid-op: the submitted read can never
    // complete, and new submissions have no entry point.
    let victims = c.soft_ids().to_vec();
    let stuck = client.get(&mut c, "any-key");
    for id in victims {
        c.sim.kill(id);
    }
    c.run_for(10);
    assert_eq!(
        client.recv(&mut c, stuck),
        Err(OpError::Timeout { waiting_on: None }),
        "dead tier = timeout (no live coordinator left to blame a replica)"
    );
    let p = client.put(&mut c, "k", b"v".to_vec(), None, None);
    assert_eq!(client.recv(&mut c, p), Err(OpError::NoLiveEntry));
}
