//! Determinism regression for the interning/scaling refactor (PR 7).
//!
//! The expected strings below are the *frozen* `Debug` renderings of three
//! scenario reports, captured on the `String`-keyed, pre-optimisation tree
//! (commit f511943). Interned keys, cached hashes, the epoch-gated failure
//! detector and the pre-sized event heap must all be behaviour-preserving:
//! a seed-replayed scenario has to produce the same report *byte for byte*
//! (f64 `Debug` is shortest-roundtrip, so equal text means bit-equal
//! floats, not approximately-equal ones).
//!
//! If one of these asserts fires, a hot-path "optimisation" changed
//! observable behaviour — RNG draw order, hash values, routing, or metrics
//! windowing — and is a correctness bug, not a perf trade-off.

use dd_core::scenario::library;
use dd_core::{Cluster, ClusterConfig, OpMix, Phase, Placement, Scenario, WorkloadKind};

const CALM_SEED42: &str = "ScenarioReport { name: \"calm\", phases: [PhaseReport { name: \"load\", ticks: 6000, issued: 240, ok: 240, errors: ErrorCounts { timeouts: 0, partials: 0, no_entry: 0 }, reads_found: 0, reads_absent: 0, stale_reads: 0, tuples_read: 0, latency_p50: 25.0, latency_p95: 25.0, latency_p99: 25.0, msgs: 2944, contacts_mean: 0.0, contacts_max: 0.0 }, PhaseReport { name: \"serve\", ticks: 10000, issued: 420, ok: 420, errors: ErrorCounts { timeouts: 0, partials: 0, no_entry: 0 }, reads_found: 307, reads_absent: 0, stale_reads: 0, tuples_read: 3079, latency_p50: 25.0, latency_p95: 25.0, latency_p99: 25.0, msgs: 5347, contacts_mean: 32.0, contacts_max: 32.0 }, PhaseReport { name: \"readback\", ticks: 8000, issued: 200, ok: 200, errors: ErrorCounts { timeouts: 0, partials: 0, no_entry: 0 }, reads_found: 159, reads_absent: 0, stale_reads: 0, tuples_read: 2359, latency_p50: 25.0, latency_p95: 25.0, latency_p99: 25.0, msgs: 3520, contacts_mean: 32.0, contacts_max: 32.0 }], ticks: 24000, msgs: 11811, latency_p50: 25.0, latency_p95: 25.0, latency_p99: 25.0, audit: None, trace: None, telemetry: None }";

const PARTITION_SEED7: &str = "ScenarioReport { name: \"partition-heal\", phases: [PhaseReport { name: \"load\", ticks: 6000, issued: 240, ok: 240, errors: ErrorCounts { timeouts: 0, partials: 0, no_entry: 0 }, reads_found: 0, reads_absent: 0, stale_reads: 0, tuples_read: 0, latency_p50: 25.0, latency_p95: 25.0, latency_p99: 25.0, msgs: 3338, contacts_mean: 0.0, contacts_max: 0.0 }, PhaseReport { name: \"serve\", ticks: 10000, issued: 420, ok: 420, errors: ErrorCounts { timeouts: 0, partials: 0, no_entry: 0 }, reads_found: 308, reads_absent: 0, stale_reads: 0, tuples_read: 1587, latency_p50: 25.0, latency_p95: 25.0, latency_p99: 25.0, msgs: 2118, contacts_mean: 1.421875, contacts_max: 3.0 }, PhaseReport { name: \"repair\", ticks: 10000, issued: 0, ok: 0, errors: ErrorCounts { timeouts: 0, partials: 0, no_entry: 0 }, reads_found: 0, reads_absent: 0, stale_reads: 0, tuples_read: 0, latency_p50: 0.0, latency_p95: 0.0, latency_p99: 0.0, msgs: 1718, contacts_mean: 0.0, contacts_max: 0.0 }, PhaseReport { name: \"readback\", ticks: 8000, issued: 200, ok: 200, errors: ErrorCounts { timeouts: 0, partials: 0, no_entry: 0 }, reads_found: 158, reads_absent: 0, stale_reads: 0, tuples_read: 2586, latency_p50: 25.0, latency_p95: 25.0, latency_p99: 25.0, msgs: 1138, contacts_mean: 3.0, contacts_max: 3.0 }], ticks: 34000, msgs: 8312, latency_p50: 25.0, latency_p95: 25.0, latency_p99: 25.0, audit: None, trace: None, telemetry: None }";

const MIXED_SEED9: &str = "ScenarioReport { name: \"mixed\", phases: [PhaseReport { name: \"load\", ticks: 4000, issued: 120, ok: 120, errors: ErrorCounts { timeouts: 0, partials: 0, no_entry: 0 }, reads_found: 0, reads_absent: 0, stale_reads: 0, tuples_read: 0, latency_p50: 25.0, latency_p95: 25.0, latency_p99: 25.0, msgs: 1610, contacts_mean: 0.0, contacts_max: 0.0 }, PhaseReport { name: \"serve\", ticks: 6000, issued: 200, ok: 200, errors: ErrorCounts { timeouts: 0, partials: 0, no_entry: 0 }, reads_found: 103, reads_absent: 5, stale_reads: 1, tuples_read: 1639, latency_p50: 25.0, latency_p95: 25.0, latency_p99: 25.0, msgs: 6146, contacts_mean: 32.0, contacts_max: 32.0 }], ticks: 10000, msgs: 7756, latency_p50: 25.0, latency_p95: 25.0, latency_p99: 25.0, audit: None, trace: None, telemetry: None }";

#[test]
fn calm_scenario_replays_byte_identically_to_pre_interning_report() {
    let mut c = Cluster::new(ClusterConfig::small(), 42);
    c.settle();
    let report = c.run_scenario(&library::calm(11));
    assert_eq!(format!("{report:?}"), CALM_SEED42);
}

#[test]
fn partition_heal_scenario_replays_byte_identically_under_tag_placement() {
    let mut c = Cluster::new(ClusterConfig::small().placement(Placement::TagCollocation), 7);
    c.settle();
    let report = c.run_scenario(&library::partition_heal(13));
    assert_eq!(format!("{report:?}"), PARTITION_SEED7);
}

#[test]
fn mixed_workload_scenario_replays_byte_identically() {
    let mut c = Cluster::new(ClusterConfig::small(), 9);
    c.settle();
    let sc = Scenario::new("mixed", WorkloadKind::SocialFeed { users: 6 }, 21)
        .phase(Phase::new("load", 4_000).mix(OpMix::idle().put(2).multi_put(1).batch(4)).ops(120))
        .phase(
            Phase::new("serve", 6_000)
                .mix(OpMix::idle().get(4).multi_get(1).scan(1).delete(1))
                .ops(200),
        );
    let report = c.run_scenario(&sc);
    assert_eq!(format!("{report:?}"), MIXED_SEED9);
}

/// Tracing must be passive: a traced run's report core (and the run it
/// measures) is bit-for-bit the untraced run — only the attached
/// [`dd_core::TraceReport`] differs from `None`.
#[test]
fn traced_run_core_is_bit_for_bit_the_untraced_run() {
    let mut c = Cluster::new(ClusterConfig::small(), 42);
    c.settle();
    let plain = c.run_scenario(&library::calm(11));

    let mut c = Cluster::new(ClusterConfig::small(), 42);
    c.settle();
    let mut traced = c.run_scenario(&library::calm(11).traced());
    let tr = traced.trace.take().expect("traced run attaches a trace report");
    assert!(tr.ops > 0 && tr.spans > tr.ops, "span trees recorded");
    // With the trace detached, the Debug rendering equals the frozen
    // pre-trace string exactly (f64 Debug is shortest-roundtrip, so equal
    // text means bit-equal floats).
    assert_eq!(format!("{traced:?}"), CALM_SEED42);
    assert_eq!(traced, plain);
}

/// Traced runs are themselves deterministic: same seed, same spans, same
/// critical paths, byte for byte.
#[test]
fn traced_scenario_replays_byte_identically() {
    let run = || {
        let mut c = Cluster::new(ClusterConfig::small().placement(Placement::TagCollocation), 7);
        c.settle();
        c.run_scenario(&library::partition_heal(13).traced())
    };
    let (a, b) = (run(), run());
    assert!(a.trace.is_some());
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

/// Telemetry sampling must be passive: an instrumented run's report core
/// (and the run it measures) is bit-for-bit the uninstrumented run — only
/// the attached [`dd_core::TelemetryReport`] differs from `None`.
#[test]
fn instrumented_run_core_is_bit_for_bit_the_uninstrumented_run() {
    let mut c = Cluster::new(ClusterConfig::small(), 42);
    c.settle();
    let plain = c.run_scenario(&library::calm(11));

    let mut c = Cluster::new(ClusterConfig::small(), 42);
    c.settle();
    let mut instrumented = c.run_scenario(&library::calm(11).instrumented());
    let tel = instrumented.telemetry.take().expect("instrumented run attaches telemetry");
    assert!(tel.samples > 0, "sampler fired");
    // With the telemetry detached, the Debug rendering equals the frozen
    // pre-telemetry string exactly (f64 Debug is shortest-roundtrip, so
    // equal text means bit-equal floats).
    assert_eq!(format!("{instrumented:?}"), CALM_SEED42);
    assert_eq!(instrumented, plain);
}

/// Instrumented runs are themselves deterministic: same seed, same
/// samples, same detector verdicts, byte for byte.
#[test]
fn instrumented_scenario_replays_byte_identically() {
    let run = || {
        let mut c = Cluster::new(ClusterConfig::small().placement(Placement::TagCollocation), 7);
        c.settle();
        c.run_scenario(&library::partition_heal(13).instrumented())
    };
    let (a, b) = (run(), run());
    assert!(a.telemetry.is_some());
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}
