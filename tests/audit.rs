//! Audit-plane integration: the stock dependability drills run audited
//! with zero safety violations, and an audited replay is byte-identical —
//! the checker verdict is a pure function of (cluster seed, scenario).

use dd_core::scenario::library;
use dd_core::{Cluster, ClusterConfig, Placement, Scenario, ScenarioReport};

fn run_audited(scenario: Scenario, placement: Placement, seed: u64) -> ScenarioReport {
    let config = ClusterConfig::small().persist_n(24).placement(placement);
    let mut c = Cluster::new(config, seed);
    c.settle();
    c.run_scenario(&scenario.audited())
}

fn assert_clean(report: &ScenarioReport, drill: &str) {
    let audit = report.audit.as_ref().expect("audited run attaches a verdict");
    assert!(audit.is_clean(), "{drill}: {} safety violation(s):\n{audit}", audit.safety_count());
    assert_eq!(audit.ops, report.issued(), "{drill}: every issued op was recorded");
    assert!(audit.sessions > 0 && audit.replicas > 0, "{drill}: audit saw the run");
}

#[test]
fn calm_drill_audits_clean() {
    let report = run_audited(library::calm(61), Placement::RangePartition, 61);
    let audit = report.audit.as_ref().unwrap();
    assert_clean(&report, "calm");
    // Fault-free: not even durability warnings.
    assert!(audit.violations.is_empty(), "calm run warns: {audit}");
}

#[test]
fn churn_storm_drill_audits_clean() {
    let report = run_audited(library::churn_storm(62), Placement::RangePartition, 62);
    assert_clean(&report, "churn-storm");
}

#[test]
fn partition_heal_drill_audits_clean() {
    let report = run_audited(library::partition_heal(63), Placement::TagCollocation, 63);
    assert_clean(&report, "partition-heal");
}

#[test]
fn cascading_crash_drill_audits_clean() {
    let report = run_audited(library::cascading_crash(64), Placement::TagCollocation, 64);
    assert_clean(&report, "cascading-crash");
}

#[test]
fn audited_replay_is_byte_identical() {
    let run = || run_audited(library::partition_heal(9), Placement::TagCollocation, 9);
    let first = run();
    let second = run();
    assert_eq!(first, second, "audited replay diverged");
    assert_eq!(
        format!("{:?}", first.audit),
        format!("{:?}", second.audit),
        "audit rendering diverged"
    );
    assert!(first.audit.as_ref().unwrap().ops > 0);
}

#[test]
fn auditing_does_not_perturb_the_run() {
    // Recording is passive: the report core of an audited run equals the
    // unaudited run bit for bit — only the verdict is added.
    let run = |audited: bool| {
        let mut c = Cluster::new(ClusterConfig::small().persist_n(24), 77);
        c.settle();
        let drill = library::calm(77);
        c.run_scenario(&if audited { drill.audited() } else { drill })
    };
    let plain = run(false);
    let mut audited = run(true);
    assert!(audited.audit.take().is_some());
    assert_eq!(plain, audited, "audit hooks changed the run");
}
